//! Hardware platform models (Table 1 of the paper).
//!
//! The paper runs its experiments on three workstations chosen to span the
//! typical range of CPU and disk performance of the time. This reproduction
//! cannot run on that hardware, so each platform is expressed as an explicit
//! cost model: a CPU clock rate used to scale deterministic operation counts,
//! and the two disk parameters that matter for the paper's argument — the
//! average random access (seek + rotation) time and the peak sequential
//! transfer rate.

use crate::stats::{CpuCounter, CpuOp};

/// Cycle costs charged per deterministic CPU operation.
///
/// These weights were calibrated once so that the simulated CPU times on
/// `MachineConfig::machine3` fall in the same range as the measured CPU times
/// reported in Figure 2(f) of the paper; they are identical for all machines
/// (only the clock rate differs), so they never change the *relative*
/// comparisons the paper makes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuCostWeights {
    /// Cycles per key comparison.
    pub compare: f64,
    /// Cycles per priority-queue operation.
    pub heap_op: f64,
    /// Cycles per rectangle intersection test.
    pub rect_test: f64,
    /// Cycles per 20-byte record moved, copied, encoded or decoded.
    pub item_move: f64,
    /// Cycles per reported output pair.
    pub output_pair: f64,
}

impl Default for CpuCostWeights {
    fn default() -> Self {
        CpuCostWeights {
            compare: 25.0,
            heap_op: 180.0,
            rect_test: 35.0,
            item_move: 220.0,
            output_pair: 120.0,
        }
    }
}

impl CpuCostWeights {
    /// Cycles charged for a single operation of kind `op`.
    pub fn cycles(&self, op: CpuOp) -> f64 {
        match op {
            CpuOp::Compare => self.compare,
            CpuOp::HeapOp => self.heap_op,
            CpuOp::RectTest => self.rect_test,
            CpuOp::ItemMove => self.item_move,
            CpuOp::OutputPair => self.output_pair,
        }
    }
}

/// A hardware platform: CPU clock plus disk characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable platform name.
    pub name: &'static str,
    /// Workstation model, as listed in Table 1.
    pub workstation: &'static str,
    /// Disk model, as listed in Table 1.
    pub disk: &'static str,
    /// CPU clock rate in MHz.
    pub cpu_mhz: f64,
    /// Average random read access time in milliseconds (seek + rotation).
    pub avg_read_ms: f64,
    /// Peak sequential transfer rate in MB/s.
    pub peak_mbps: f64,
    /// On-disk buffer size in KB (reported for completeness; the small buffer
    /// of Machine 2 is the paper's explanation for ST losing its sequential
    /// advantage there).
    pub disk_buffer_kb: u32,
    /// Penalty factor for sequential writes relative to sequential reads.
    /// The paper's back-of-the-envelope model in Section 6.3 charges
    /// sequential writes 1.5x a sequential read.
    pub write_penalty: f64,
    /// Cycle weights for the deterministic CPU model.
    pub cpu_weights: CpuCostWeights,
}

impl MachineConfig {
    /// Machine 1: slow CPU, fast disk (SUN Sparc 20 / Seagate Barracuda).
    pub fn machine1() -> Self {
        MachineConfig {
            name: "Machine 1",
            workstation: "SUN Sparc 20 (50 MHz)",
            disk: "ST-32550N Barracuda",
            cpu_mhz: 50.0,
            avg_read_ms: 8.0,
            peak_mbps: 10.0,
            disk_buffer_kb: 512,
            write_penalty: 1.5,
            cpu_weights: CpuCostWeights::default(),
        }
    }

    /// Machine 2: fast CPU, disk with high transfer rate but slow access time
    /// and a small on-disk buffer (SUN Ultra 10 / Seagate Medalist).
    pub fn machine2() -> Self {
        MachineConfig {
            name: "Machine 2",
            workstation: "SUN Ultra 10 (300 MHz)",
            disk: "ST-34342A Medalist",
            cpu_mhz: 300.0,
            avg_read_ms: 12.5,
            peak_mbps: 33.3,
            disk_buffer_kb: 128,
            write_penalty: 1.5,
            cpu_weights: CpuCostWeights::default(),
        }
    }

    /// Machine 3: state-of-the-art workstation, fast CPU and fast disk
    /// (DEC Alpha 500 / Seagate Cheetah).
    pub fn machine3() -> Self {
        MachineConfig {
            name: "Machine 3",
            workstation: "DEC Alpha 500 (500 MHz)",
            disk: "ST-34501W Cheetah",
            cpu_mhz: 500.0,
            avg_read_ms: 7.7,
            peak_mbps: 40.0,
            disk_buffer_kb: 512,
            write_penalty: 1.5,
            cpu_weights: CpuCostWeights::default(),
        }
    }

    /// All three platforms of Table 1, in order.
    pub fn all() -> Vec<MachineConfig> {
        vec![Self::machine1(), Self::machine2(), Self::machine3()]
    }

    /// Seconds charged for one random access (seek + rotational delay).
    #[inline]
    pub fn random_access_secs(&self) -> f64 {
        self.avg_read_ms / 1000.0
    }

    /// Seconds needed to transfer `bytes` sequentially at the peak rate.
    #[inline]
    pub fn read_transfer_secs(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.peak_mbps * 1_000_000.0)
    }

    /// Seconds needed to write `bytes`, charged `write_penalty` times the
    /// sequential read transfer time.
    #[inline]
    pub fn write_transfer_secs(&self, bytes: u64) -> f64 {
        self.read_transfer_secs(bytes) * self.write_penalty
    }

    /// Converts a deterministic CPU counter into simulated seconds on this
    /// machine.
    pub fn cpu_secs(&self, cpu: &CpuCounter) -> f64 {
        let mut cycles = 0.0;
        for op in CpuOp::all() {
            cycles += cpu.get(op) as f64 * self.cpu_weights.cycles(op);
        }
        cycles / (self.cpu_mhz * 1_000_000.0)
    }

    /// Ratio between a random access and reading one 8 KiB page sequentially.
    ///
    /// Section 6.3 of the paper assumes a random read costs roughly 10x a
    /// sequential read; this method exposes the exact value implied by each
    /// machine's parameters so the cost model can use it.
    pub fn random_to_sequential_ratio(&self) -> f64 {
        let seq = self.read_transfer_secs(crate::PAGE_SIZE as u64);
        (self.random_access_secs() + seq) / seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_parameters() {
        let m1 = MachineConfig::machine1();
        let m2 = MachineConfig::machine2();
        let m3 = MachineConfig::machine3();
        assert_eq!(m1.cpu_mhz, 50.0);
        assert_eq!(m2.cpu_mhz, 300.0);
        assert_eq!(m3.cpu_mhz, 500.0);
        assert_eq!(m1.avg_read_ms, 8.0);
        assert_eq!(m2.avg_read_ms, 12.5);
        assert_eq!(m3.avg_read_ms, 7.7);
        assert_eq!(m1.peak_mbps, 10.0);
        assert_eq!(m2.peak_mbps, 33.3);
        assert_eq!(m3.peak_mbps, 40.0);
        assert_eq!(MachineConfig::all().len(), 3);
    }

    #[test]
    fn cpu_time_scales_inversely_with_clock() {
        let mut cpu = CpuCounter::new();
        cpu.add(CpuOp::Compare, 1_000_000);
        cpu.add(CpuOp::ItemMove, 1_000_000);
        let t1 = MachineConfig::machine1().cpu_secs(&cpu);
        let t3 = MachineConfig::machine3().cpu_secs(&cpu);
        assert!((t1 / t3 - 10.0).abs() < 1e-9, "500/50 MHz should be 10x");
        assert!(t1 > 0.0);
    }

    #[test]
    fn random_accesses_are_much_more_expensive_than_sequential() {
        for m in MachineConfig::all() {
            let ratio = m.random_to_sequential_ratio();
            assert!(
                ratio > 5.0 && ratio < 100.0,
                "{} has implausible random/sequential ratio {ratio}",
                m.name
            );
        }
    }

    #[test]
    fn write_penalty_applied() {
        let m = MachineConfig::machine3();
        let r = m.read_transfer_secs(1_000_000);
        let w = m.write_transfer_secs(1_000_000);
        assert!((w / r - 1.5).abs() < 1e-12);
    }

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let m = MachineConfig::machine2();
        let a = m.read_transfer_secs(8192);
        let b = m.read_transfer_secs(16384);
        assert!((b - 2.0 * a).abs() < 1e-12);
    }
}
