//! Fixed-size pages of the simulated disk.

/// Size of a disk page in bytes.
///
/// The paper uses 8 KB R-tree nodes on all machines (on the one machine whose
/// native page size was 4 KB it simply requested two blocks per operation),
/// so the simulated device uses a single fixed 8 KiB page size.
pub const PAGE_SIZE: usize = 8192;

/// Identifier of a page on the simulated disk.
///
/// Pages are allocated sequentially, so consecutive `PageId`s correspond to
/// physically adjacent disk blocks — exactly the property the paper exploits
/// when discussing the largely sequential layout of bulk-loaded R-trees.
pub type PageId = u64;

/// A single page worth of bytes.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Creates a zero-filled page.
    pub fn zeroed() -> Self {
        Page {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Immutable view of the page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the page contents.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::zeroed()
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page({} bytes)", self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_has_fixed_size() {
        let p = Page::zeroed();
        assert_eq!(p.bytes().len(), PAGE_SIZE);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn page_is_mutable_and_clonable() {
        let mut p = Page::zeroed();
        p.bytes_mut()[0] = 42;
        p.bytes_mut()[PAGE_SIZE - 1] = 7;
        let q = p.clone();
        assert_eq!(q.bytes()[0], 42);
        assert_eq!(q.bytes()[PAGE_SIZE - 1], 7);
    }

    #[test]
    fn debug_format_mentions_size() {
        assert!(format!("{:?}", Page::zeroed()).contains("8192"));
    }
}
