//! Deterministic I/O and CPU accounting.
//!
//! The paper reports two kinds of measurements: page-request counts
//! (Table 4) and running times split into CPU and I/O components
//! (Figures 2 and 3). Real wall-clock measurements would make this
//! reproduction unstable across host machines, so instead every algorithm
//! increments deterministic counters which the [`crate::cost::CostModel`]
//! later converts to simulated seconds using a [`crate::machine::MachineConfig`].

/// Counters describing all traffic seen by a [`crate::device::BlockDevice`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Number of read operations whose first page immediately followed the
    /// previously accessed page (no seek required).
    pub seq_read_ops: u64,
    /// Number of read operations that required a seek.
    pub rand_read_ops: u64,
    /// Number of write operations that followed the previous access.
    pub seq_write_ops: u64,
    /// Number of write operations that required a seek.
    pub rand_write_ops: u64,
    /// Total pages transferred by read operations.
    pub pages_read: u64,
    /// Total pages transferred by write operations.
    pub pages_written: u64,
}

impl IoStats {
    /// Total number of read operations.
    #[inline]
    pub fn read_ops(&self) -> u64 {
        self.seq_read_ops + self.rand_read_ops
    }

    /// Total number of write operations.
    #[inline]
    pub fn write_ops(&self) -> u64 {
        self.seq_write_ops + self.rand_write_ops
    }

    /// Total number of I/O operations.
    #[inline]
    pub fn total_ops(&self) -> u64 {
        self.read_ops() + self.write_ops()
    }

    /// Total bytes read.
    #[inline]
    pub fn bytes_read(&self) -> u64 {
        self.pages_read * crate::PAGE_SIZE as u64
    }

    /// Total bytes written.
    #[inline]
    pub fn bytes_written(&self) -> u64 {
        self.pages_written * crate::PAGE_SIZE as u64
    }

    /// Component-wise difference `self - earlier`, used to measure the traffic
    /// of a single phase of an algorithm.
    pub fn delta_since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            seq_read_ops: self.seq_read_ops - earlier.seq_read_ops,
            rand_read_ops: self.rand_read_ops - earlier.rand_read_ops,
            seq_write_ops: self.seq_write_ops - earlier.seq_write_ops,
            rand_write_ops: self.rand_write_ops - earlier.rand_write_ops,
            pages_read: self.pages_read - earlier.pages_read,
            pages_written: self.pages_written - earlier.pages_written,
        }
    }

    /// Component-wise sum.
    pub fn combined(&self, other: &IoStats) -> IoStats {
        IoStats {
            seq_read_ops: self.seq_read_ops + other.seq_read_ops,
            rand_read_ops: self.rand_read_ops + other.rand_read_ops,
            seq_write_ops: self.seq_write_ops + other.seq_write_ops,
            rand_write_ops: self.rand_write_ops + other.rand_write_ops,
            pages_read: self.pages_read + other.pages_read,
            pages_written: self.pages_written + other.pages_written,
        }
    }

    /// Adds `other` into `self` component-wise.
    ///
    /// Used to roll the per-worker statistics of a parallel partitioned run
    /// up into one aggregate: merging every worker's delta into the
    /// coordinator's own delta yields exactly the traffic an equivalent
    /// serial execution of all shards would have produced.
    pub fn merge(&mut self, other: &IoStats) {
        *self = self.combined(other);
    }

    /// The four-number summary the observability layer attaches to spans
    /// (`usj_obs` sits below this crate, so it cannot carry `IoStats`
    /// itself).
    pub fn span_io(&self) -> usj_obs::SpanIo {
        usj_obs::SpanIo {
            pages_read: self.pages_read,
            pages_written: self.pages_written,
            seq_ops: self.seq_read_ops + self.seq_write_ops,
            rand_ops: self.rand_read_ops + self.rand_write_ops,
        }
    }
}

/// Kinds of CPU work tracked by the deterministic CPU model.
///
/// The weights (in CPU cycles per operation) live in
/// [`crate::machine::MachineConfig`]; the counter itself only records how many
/// operations of each kind an algorithm performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuOp {
    /// A key comparison (sorting, merging, searching).
    Compare,
    /// A priority-queue / heap insert or extract.
    HeapOp,
    /// A rectangle-rectangle intersection test.
    RectTest,
    /// A record moved, copied, encoded or decoded (20-byte item granularity).
    ItemMove,
    /// An output pair reported by the join.
    OutputPair,
}

/// Number of distinct [`CpuOp`] kinds.
pub const CPU_OP_KINDS: usize = 5;

impl CpuOp {
    /// Dense index of the operation kind, used for array-backed counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            CpuOp::Compare => 0,
            CpuOp::HeapOp => 1,
            CpuOp::RectTest => 2,
            CpuOp::ItemMove => 3,
            CpuOp::OutputPair => 4,
        }
    }

    /// All operation kinds, in index order.
    pub fn all() -> [CpuOp; CPU_OP_KINDS] {
        [
            CpuOp::Compare,
            CpuOp::HeapOp,
            CpuOp::RectTest,
            CpuOp::ItemMove,
            CpuOp::OutputPair,
        ]
    }
}

/// Deterministic CPU-work counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuCounter {
    counts: [u64; CPU_OP_KINDS],
}

impl CpuCounter {
    /// A counter with all kinds at zero.
    pub fn new() -> Self {
        CpuCounter::default()
    }

    /// Records `n` operations of kind `op`.
    #[inline]
    pub fn add(&mut self, op: CpuOp, n: u64) {
        self.counts[op.index()] += n;
    }

    /// Records a single operation of kind `op`.
    #[inline]
    pub fn bump(&mut self, op: CpuOp) {
        self.add(op, 1);
    }

    /// Number of operations of kind `op` recorded so far.
    #[inline]
    pub fn get(&self, op: CpuOp) -> u64 {
        self.counts[op.index()]
    }

    /// Total operations across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Component-wise difference `self - earlier`.
    pub fn delta_since(&self, earlier: &CpuCounter) -> CpuCounter {
        let mut out = CpuCounter::default();
        for (i, c) in out.counts.iter_mut().enumerate() {
            *c = self.counts[i] - earlier.counts[i];
        }
        out
    }

    /// Component-wise sum.
    pub fn combined(&self, other: &CpuCounter) -> CpuCounter {
        let mut out = CpuCounter::default();
        for (i, c) in out.counts.iter_mut().enumerate() {
            *c = self.counts[i] + other.counts[i];
        }
        out
    }

    /// Adds `other` into `self` component-wise (see [`IoStats::merge`]).
    pub fn merge(&mut self, other: &CpuCounter) {
        *self = self.combined(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_stats_totals() {
        let s = IoStats {
            seq_read_ops: 3,
            rand_read_ops: 2,
            seq_write_ops: 1,
            rand_write_ops: 4,
            pages_read: 10,
            pages_written: 6,
        };
        assert_eq!(s.read_ops(), 5);
        assert_eq!(s.write_ops(), 5);
        assert_eq!(s.total_ops(), 10);
        assert_eq!(s.bytes_read(), 10 * crate::PAGE_SIZE as u64);
        assert_eq!(s.bytes_written(), 6 * crate::PAGE_SIZE as u64);
    }

    #[test]
    fn io_stats_delta_and_combine_are_inverse() {
        let a = IoStats {
            seq_read_ops: 3,
            rand_read_ops: 2,
            seq_write_ops: 1,
            rand_write_ops: 4,
            pages_read: 10,
            pages_written: 6,
        };
        let b = IoStats {
            seq_read_ops: 1,
            rand_read_ops: 1,
            seq_write_ops: 0,
            rand_write_ops: 2,
            pages_read: 4,
            pages_written: 3,
        };
        let sum = a.combined(&b);
        assert_eq!(sum.delta_since(&b), a);
        assert_eq!(sum.delta_since(&a), b);
    }

    #[test]
    fn cpu_counter_tracks_each_kind_separately() {
        let mut c = CpuCounter::new();
        c.add(CpuOp::Compare, 10);
        c.bump(CpuOp::HeapOp);
        c.add(CpuOp::OutputPair, 5);
        assert_eq!(c.get(CpuOp::Compare), 10);
        assert_eq!(c.get(CpuOp::HeapOp), 1);
        assert_eq!(c.get(CpuOp::RectTest), 0);
        assert_eq!(c.total(), 16);
    }

    #[test]
    fn merge_is_in_place_combined() {
        let mut a = IoStats {
            seq_read_ops: 3,
            rand_read_ops: 2,
            seq_write_ops: 1,
            rand_write_ops: 4,
            pages_read: 10,
            pages_written: 6,
        };
        let b = IoStats {
            seq_read_ops: 1,
            rand_read_ops: 1,
            seq_write_ops: 0,
            rand_write_ops: 2,
            pages_read: 4,
            pages_written: 3,
        };
        let combined = a.combined(&b);
        a.merge(&b);
        assert_eq!(a, combined);

        let mut c = CpuCounter::new();
        c.add(CpuOp::Compare, 5);
        let mut d = CpuCounter::new();
        d.add(CpuOp::Compare, 2);
        d.add(CpuOp::HeapOp, 1);
        let expect = c.combined(&d);
        c.merge(&d);
        assert_eq!(c, expect);
    }

    #[test]
    fn cpu_counter_delta_and_combine() {
        let mut a = CpuCounter::new();
        a.add(CpuOp::ItemMove, 100);
        let mut b = a;
        b.add(CpuOp::ItemMove, 20);
        b.add(CpuOp::Compare, 3);
        let d = b.delta_since(&a);
        assert_eq!(d.get(CpuOp::ItemMove), 20);
        assert_eq!(d.get(CpuOp::Compare), 3);
        assert_eq!(a.combined(&d), b);
    }

    #[test]
    fn op_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in CpuOp::all() {
            assert!(op.index() < CPU_OP_KINDS);
            assert!(seen.insert(op.index()));
        }
        assert_eq!(seen.len(), CPU_OP_KINDS);
    }
}
