//! A minimal, dependency-free property-testing harness.
//!
//! The workspace's property tests were written for the external `proptest`
//! crate, which the offline build environment cannot fetch. This crate
//! vendors the 5 % of it those tests actually use:
//!
//! * [`Gen`] — a SplitMix64-driven generator with uniform primitives
//!   (`f32_in`, `usize_in`, `vec`, …); equal seeds produce equal values on
//!   every platform, so failures are reproducible by seed.
//! * [`forall!`] — runs a property body for a fixed number of cases, each
//!   with a deterministic per-case seed. On failure it prints the case index
//!   and seed before propagating the panic. There is **no shrinking**: the
//!   printed seed is the minimal repro handle.
//!
//! ```
//! usj_proptest::forall!(64, |g| {
//!     let a = g.f32_in(-100.0, 100.0);
//!     let b = g.f32_in(-100.0, 100.0);
//!     assert_eq!(a.max(b), b.max(a));
//! });
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

/// A seedable SplitMix64 generator (Steele, Lea & Flood, OOPSLA 2014) with
/// the uniform primitives the workspace's property tests need.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a 64-bit seed. Equal seeds produce equal
    /// sequences on every platform.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniformly distributed `u32`.
    pub fn u32(&mut self) -> u32 {
        (self.u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift range reduction (Lemire).
        lo + ((u128::from(self.u64()) * u128::from(span)) >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`, built from the top 53 bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[lo, hi)`.
    pub fn f32_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + ((self.u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)) * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// A vector of `len` elements drawn with `f`, where `len` is uniform in
    /// `[min_len, max_len)` (mirroring `prop::collection::vec(_, a..b)`).
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut f: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = if min_len + 1 >= max_len {
            min_len
        } else {
            self.usize_in(min_len, max_len)
        };
        (0..len).map(|_| f(self)).collect()
    }
}

/// Derives the deterministic seed of one `forall!` case.
///
/// Public because the [`forall!`] macro expands calls to it in downstream
/// crates; also handy for replaying a reported failure by hand.
pub fn case_seed(case: u64) -> u64 {
    // One SplitMix64 step over the case index, so consecutive cases get
    // well-separated seeds.
    let mut z = case.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a property body for `cases` deterministic cases.
///
/// ```text
/// forall!(64, |g| { ... });          // 64 cases, `g: &mut Gen` in scope
/// ```
///
/// On a failing case the macro prints the case index and its seed (replay
/// with `Gen::new(seed)`) and re-raises the panic, so `cargo test` reports
/// the property as failed with the original assertion message.
#[macro_export]
macro_rules! forall {
    ($cases:expr, |$g:ident| $body:block) => {{
        let cases: u64 = $cases;
        for case in 0..cases {
            let seed = $crate::case_seed(case);
            let mut gen = $crate::Gen::new(seed);
            let $g = &mut gen;
            let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
            if let Err(payload) = outcome {
                eprintln!(
                    "forall! case {}/{} failed; replay with usj_proptest::Gen::new({:#018x})",
                    case + 1,
                    cases,
                    seed
                );
                ::std::panic::resume_unwind(payload);
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Gen::new(42);
        let mut b = Gen::new(42);
        for _ in 0..64 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn ranges_are_respected() {
        forall!(128, |g| {
            let x = g.f32_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&x));
            let n = g.usize_in(2, 9);
            assert!((2..9).contains(&n));
            let v = g.vec(0, 5, |g| g.u32());
            assert!(v.len() < 5);
        });
    }

    #[test]
    fn case_seeds_are_distinct() {
        let mut seeds: Vec<u64> = (0..1000).map(case_seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 1000);
    }

    #[test]
    fn failing_case_propagates_the_panic() {
        let caught = std::panic::catch_unwind(|| {
            forall!(16, |g| {
                assert!(g.u64_in(0, 10) < 5, "roughly half the cases fail");
            });
        });
        assert!(caught.is_err());
    }

    #[test]
    fn empty_vec_range_yields_fixed_length() {
        let mut g = Gen::new(1);
        assert_eq!(g.vec(3, 4, |g| g.u32()).len(), 3);
        assert_eq!(g.vec(0, 1, |g| g.u32()).len(), 0);
    }
}
