//! Geometry primitives for the unified spatial join.
//!
//! The paper's filter step operates exclusively on *minimal bounding
//! rectangles* (MBRs): each spatial object is approximated by the smallest
//! axis-parallel rectangle containing it, and the join reports all pairs of
//! intersecting MBRs. This crate provides those primitives:
//!
//! * [`Point`] — a 2-D point with `f32` coordinates (the paper stores 16-byte
//!   corner coordinates, i.e. four 4-byte floats per rectangle).
//! * [`Rect`] — an axis-parallel rectangle, the MBR representation.
//! * [`Item`] — a rectangle plus its 4-byte object identifier; exactly the
//!   20-byte record layout used by the paper's data files.
//! * [`Interval`] — a 1-D interval, used by the plane-sweep structures for the
//!   projections of rectangles onto the sweep line.
//! * [`hilbert`] — the Hilbert space-filling curve used for R-tree bulk
//!   loading (Kamel & Faloutsos packing heuristic).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod hilbert;
pub mod interval;
pub mod item;
pub mod point;
pub mod rect;

pub use interval::Interval;
pub use item::{sort_by_lower_y, Item, ObjectId, ITEM_BYTES};
pub use point::Point;
pub use rect::Rect;

// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
