//! Property-based tests for the geometry primitives, on the in-tree
//! `usj_proptest` harness.

use usj_proptest::{forall, Gen};

use crate::{hilbert, Interval, Item, Point, Rect, ITEM_BYTES};

fn arb_rect(g: &mut Gen) -> Rect {
    let x = g.f32_in(-1000.0, 1000.0);
    let y = g.f32_in(-1000.0, 1000.0);
    let w = g.f32_in(0.0, 100.0);
    let h = g.f32_in(0.0, 100.0);
    Rect::from_coords(x, y, x + w, y + h)
}

fn arb_item(g: &mut Gen) -> Item {
    let r = arb_rect(g);
    Item::new(r, g.u32())
}

#[test]
fn rect_intersection_is_symmetric() {
    forall!(256, |g| {
        let (a, b) = (arb_rect(g), arb_rect(g));
        assert_eq!(a.intersects(&b), b.intersects(&a));
    });
}

#[test]
fn rect_intersects_iff_both_projections_overlap() {
    forall!(256, |g| {
        let (a, b) = (arb_rect(g), arb_rect(g));
        let expected = a.x_interval().overlaps(&b.x_interval())
            && a.y_interval().overlaps(&b.y_interval());
        assert_eq!(a.intersects(&b), expected);
    });
}

#[test]
fn rect_union_contains_both() {
    forall!(256, |g| {
        let (a, b) = (arb_rect(g), arb_rect(g));
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
    });
}

#[test]
fn rect_intersection_contained_in_both() {
    forall!(256, |g| {
        let (a, b) = (arb_rect(g), arb_rect(g));
        if let Some(i) = a.intersection(&b) {
            assert!(a.contains(&i));
            assert!(b.contains(&i));
            assert!(a.intersects(&b));
        } else {
            assert!(!a.intersects(&b));
        }
    });
}

#[test]
fn rect_enlargement_is_nonnegative() {
    forall!(256, |g| {
        let (a, b) = (arb_rect(g), arb_rect(g));
        assert!(a.enlargement(&b) >= -1e-3);
    });
}

#[test]
fn rect_every_rect_intersects_itself() {
    forall!(256, |g| {
        let a = arb_rect(g);
        assert!(a.intersects(&a));
        assert!(a.contains(&a));
        assert!(a.contains_point(a.center()));
    });
}

#[test]
fn interval_overlap_matches_naive() {
    forall!(256, |g| {
        let a = g.f32_in(-100.0, 100.0);
        let la = g.f32_in(0.0, 50.0);
        let b = g.f32_in(-100.0, 100.0);
        let lb = g.f32_in(0.0, 50.0);
        let i1 = Interval::new(a, a + la);
        let i2 = Interval::new(b, b + lb);
        let naive = !(i1.hi < i2.lo || i2.hi < i1.lo);
        assert_eq!(i1.overlaps(&i2), naive);
    });
}

#[test]
fn item_encode_decode_roundtrip() {
    forall!(256, |g| {
        let it = arb_item(g);
        let mut buf = [0u8; ITEM_BYTES];
        it.encode(&mut buf);
        assert_eq!(Item::decode(&buf), it);
    });
}

#[test]
fn hilbert_roundtrip() {
    forall!(256, |g| {
        let x = g.u32_in(0, hilbert::HILBERT_SIDE);
        let y = g.u32_in(0, hilbert::HILBERT_SIDE);
        let d = hilbert::xy_to_hilbert(x, y);
        assert_eq!(hilbert::hilbert_to_xy(d), (x, y));
    });
}

#[test]
fn hilbert_value_is_deterministic() {
    forall!(256, |g| {
        let x = g.f32_in(-500.0, 500.0);
        let y = g.f32_in(-500.0, 500.0);
        let space = Rect::from_coords(-500.0, -500.0, 500.0, 500.0);
        assert_eq!(
            hilbert::hilbert_value(x, y, &space),
            hilbert::hilbert_value(x, y, &space)
        );
    });
}

#[test]
fn sort_by_lower_y_is_sorted() {
    forall!(128, |g| {
        let mut items = g.vec(0, 200, arb_item);
        crate::item::sort_by_lower_y(&mut items);
        for w in items.windows(2) {
            assert!(w[0].rect.lo.y <= w[1].rect.lo.y);
        }
    });
}

#[test]
fn point_min_max_bound() {
    forall!(256, |g| {
        let pa = Point::new(g.f32_in(-1e6, 1e6), g.f32_in(-1e6, 1e6));
        let pb = Point::new(g.f32_in(-1e6, 1e6), g.f32_in(-1e6, 1e6));
        let lo = pa.min(pb);
        let hi = pa.max(pb);
        assert!(lo.x <= hi.x && lo.y <= hi.y);
    });
}
