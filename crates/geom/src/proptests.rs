//! Property-based tests for the geometry primitives.

use crate::{hilbert, Interval, Item, Point, Rect, ITEM_BYTES};
use proptest::prelude::*;

fn arb_rect() -> impl Strategy<Value = Rect> {
    (
        -1000.0f32..1000.0,
        -1000.0f32..1000.0,
        0.0f32..100.0,
        0.0f32..100.0,
    )
        .prop_map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
}

fn arb_item() -> impl Strategy<Value = Item> {
    (arb_rect(), any::<u32>()).prop_map(|(r, id)| Item::new(r, id))
}

proptest! {
    #[test]
    fn rect_intersection_is_symmetric(a in arb_rect(), b in arb_rect()) {
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn rect_intersects_iff_both_projections_overlap(a in arb_rect(), b in arb_rect()) {
        let expected = a.x_interval().overlaps(&b.x_interval())
            && a.y_interval().overlaps(&b.y_interval());
        prop_assert_eq!(a.intersects(&b), expected);
    }

    #[test]
    fn rect_union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains(&a));
        prop_assert!(u.contains(&b));
    }

    #[test]
    fn rect_intersection_contained_in_both(a in arb_rect(), b in arb_rect()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains(&i));
            prop_assert!(b.contains(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn rect_enlargement_is_nonnegative(a in arb_rect(), b in arb_rect()) {
        prop_assert!(a.enlargement(&b) >= -1e-3);
    }

    #[test]
    fn rect_every_rect_intersects_itself(a in arb_rect()) {
        prop_assert!(a.intersects(&a));
        prop_assert!(a.contains(&a));
        prop_assert!(a.contains_point(a.center()));
    }

    #[test]
    fn interval_overlap_matches_naive(a in -100.0f32..100.0, la in 0.0f32..50.0,
                                      b in -100.0f32..100.0, lb in 0.0f32..50.0) {
        let i1 = Interval::new(a, a + la);
        let i2 = Interval::new(b, b + lb);
        let naive = !(i1.hi < i2.lo || i2.hi < i1.lo);
        prop_assert_eq!(i1.overlaps(&i2), naive);
    }

    #[test]
    fn item_encode_decode_roundtrip(it in arb_item()) {
        let mut buf = [0u8; ITEM_BYTES];
        it.encode(&mut buf);
        prop_assert_eq!(Item::decode(&buf), it);
    }

    #[test]
    fn hilbert_roundtrip(x in 0u32..hilbert::HILBERT_SIDE, y in 0u32..hilbert::HILBERT_SIDE) {
        let d = hilbert::xy_to_hilbert(x, y);
        prop_assert_eq!(hilbert::hilbert_to_xy(d), (x, y));
    }

    #[test]
    fn hilbert_value_is_deterministic(x in -500.0f32..500.0, y in -500.0f32..500.0) {
        let space = Rect::from_coords(-500.0, -500.0, 500.0, 500.0);
        prop_assert_eq!(hilbert::hilbert_value(x, y, &space),
                        hilbert::hilbert_value(x, y, &space));
    }

    #[test]
    fn sort_by_lower_y_is_sorted(mut items in prop::collection::vec(arb_item(), 0..200)) {
        crate::item::sort_by_lower_y(&mut items);
        for w in items.windows(2) {
            prop_assert!(w[0].rect.lo.y <= w[1].rect.lo.y);
        }
    }

    #[test]
    fn point_min_max_bound(a in any::<(f32, f32)>(), b in any::<(f32, f32)>()) {
        prop_assume!(a.0.is_finite() && a.1.is_finite() && b.0.is_finite() && b.1.is_finite());
        let pa = Point::new(a.0, a.1);
        let pb = Point::new(b.0, b.1);
        let lo = pa.min(pb);
        let hi = pa.max(pb);
        prop_assert!(lo.x <= hi.x && lo.y <= hi.y);
    }
}
