//! Axis-parallel rectangles (minimal bounding rectangles).

use crate::{Interval, Point};

/// An axis-parallel rectangle, the MBR approximation used by the filter step.
///
/// A rectangle is stored as its lower-left (`lo`) and upper-right (`hi`)
/// corners. Degenerate rectangles (zero width and/or height) are allowed —
/// points and horizontal/vertical segments occur frequently in the TIGER data
/// the paper evaluates on.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Lower-left corner.
    pub lo: Point,
    /// Upper-right corner.
    pub hi: Point,
}

impl Rect {
    /// Creates a rectangle from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the corners are not ordered
    /// (`lo.x <= hi.x && lo.y <= hi.y`).
    #[inline]
    pub fn new(lo: Point, hi: Point) -> Self {
        debug_assert!(lo.x <= hi.x && lo.y <= hi.y, "rectangle corners out of order");
        Rect { lo, hi }
    }

    /// Creates a rectangle from raw coordinates `(x_lo, y_lo, x_hi, y_hi)`.
    #[inline]
    pub fn from_coords(x_lo: f32, y_lo: f32, x_hi: f32, y_hi: f32) -> Self {
        Rect::new(Point::new(x_lo, y_lo), Point::new(x_hi, y_hi))
    }

    /// Creates a rectangle from two arbitrary corner points, ordering them.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(a.min(b), a.max(b))
    }

    /// A degenerate rectangle containing a single point.
    #[inline]
    pub fn point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// An "empty" rectangle that behaves as the identity for [`Rect::union`].
    ///
    /// It intersects nothing and unions to the other operand.
    #[inline]
    pub fn empty() -> Self {
        Rect {
            lo: Point::new(f32::INFINITY, f32::INFINITY),
            hi: Point::new(f32::NEG_INFINITY, f32::NEG_INFINITY),
        }
    }

    /// Returns `true` if this is the [`Rect::empty`] identity rectangle.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo.x > self.hi.x || self.lo.y > self.hi.y
    }

    /// Width of the rectangle along the x-axis.
    #[inline]
    pub fn width(&self) -> f32 {
        (self.hi.x - self.lo.x).max(0.0)
    }

    /// Height of the rectangle along the y-axis.
    #[inline]
    pub fn height(&self) -> f32 {
        (self.hi.y - self.lo.y).max(0.0)
    }

    /// Area of the rectangle (computed in `f64` to limit rounding error).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            f64::from(self.width()) * f64::from(self.height())
        }
    }

    /// Centre point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new((self.lo.x + self.hi.x) * 0.5, (self.lo.y + self.hi.y) * 0.5)
    }

    /// The *intersect* predicate used by the spatial overlay join.
    ///
    /// Rectangles that merely touch (share a boundary point) are considered
    /// intersecting, matching the closed-rectangle semantics of the paper's
    /// filter step.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.x <= other.hi.x
            && other.lo.x <= self.hi.x
            && self.lo.y <= other.hi.y
            && other.lo.y <= self.hi.y
    }

    /// Returns `true` if `other` is fully contained in `self` (closed sense).
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        self.lo.x <= other.lo.x
            && self.lo.y <= other.lo.y
            && self.hi.x >= other.hi.x
            && self.hi.y >= other.hi.y
    }

    /// Returns `true` if the point `p` lies inside the rectangle (closed sense).
    #[inline]
    pub fn contains_point(&self, p: Point) -> bool {
        self.lo.x <= p.x && p.x <= self.hi.x && self.lo.y <= p.y && p.y <= self.hi.y
    }

    /// Smallest rectangle containing both operands.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Intersection of the two rectangles, or `None` if they are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            lo: self.lo.max(other.lo),
            hi: self.hi.min(other.hi),
        })
    }

    /// The rectangle grown by `eps` on every side (Minkowski sum with a
    /// `2eps × 2eps` square).
    ///
    /// This is the ε-expansion used by the distance join: two rectangles are
    /// within Chebyshev (L∞) distance `eps` of each other exactly when one of
    /// them, expanded by `eps`, intersects the other. Expanding with
    /// `eps == 0.0` returns the rectangle unchanged; empty rectangles stay
    /// empty for small `eps`.
    #[inline]
    pub fn expanded(&self, eps: f32) -> Rect {
        if eps == 0.0 {
            return *self;
        }
        Rect {
            lo: Point::new(self.lo.x - eps, self.lo.y - eps),
            hi: Point::new(self.hi.x + eps, self.hi.y + eps),
        }
    }

    /// Area increase caused by enlarging `self` to also cover `other`.
    ///
    /// Used by the bulk-loading packing heuristic ("include additional
    /// rectangles only if they do not increase the area already covered by
    /// the node by more than 20 %").
    #[inline]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Projection of the rectangle onto the x-axis.
    #[inline]
    pub fn x_interval(&self) -> Interval {
        Interval::new(self.lo.x, self.hi.x)
    }

    /// Projection of the rectangle onto the y-axis.
    #[inline]
    pub fn y_interval(&self) -> Interval {
        Interval::new(self.lo.y, self.hi.y)
    }

    /// Total-order comparison by lower y-coordinate, breaking ties by lower x
    /// and then by the upper corner.
    ///
    /// This is the ordering of the plane sweep: both SSSJ and PQ consume their
    /// inputs sorted by the lower y-coordinate of each MBR.
    #[inline]
    pub fn cmp_by_lower_y(&self, other: &Rect) -> std::cmp::Ordering {
        ord_f32(self.lo.y, other.lo.y)
            .then_with(|| ord_f32(self.lo.x, other.lo.x))
            .then_with(|| ord_f32(self.hi.y, other.hi.y))
            .then_with(|| ord_f32(self.hi.x, other.hi.x))
    }
}

/// Total order on `f32` values that treats all NaNs as equal and larger than
/// any number. The workloads never produce NaNs, but the sort must still be a
/// total order to satisfy `sort_by`'s contract.
#[inline]
pub fn ord_f32(a: f32, b: f32) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap_or_else(|| {
        if a.is_nan() && b.is_nan() {
            std::cmp::Ordering::Equal
        } else if a.is_nan() {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Less
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f32, y0: f32, x1: f32, y1: f32) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn intersects_basic_overlap() {
        assert!(r(0.0, 0.0, 2.0, 2.0).intersects(&r(1.0, 1.0, 3.0, 3.0)));
        assert!(!r(0.0, 0.0, 1.0, 1.0).intersects(&r(2.0, 2.0, 3.0, 3.0)));
    }

    #[test]
    fn intersects_is_symmetric() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(-1.0, 1.0, 0.5, 5.0);
        assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    #[test]
    fn touching_rectangles_intersect() {
        // Shared edge.
        assert!(r(0.0, 0.0, 1.0, 1.0).intersects(&r(1.0, 0.0, 2.0, 1.0)));
        // Shared corner.
        assert!(r(0.0, 0.0, 1.0, 1.0).intersects(&r(1.0, 1.0, 2.0, 2.0)));
    }

    #[test]
    fn containment_implies_intersection() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(outer.intersects(&inner));
        assert!(!inner.contains(&outer));
    }

    #[test]
    fn degenerate_rectangles() {
        let p = Rect::point(Point::new(1.0, 1.0));
        assert_eq!(p.area(), 0.0);
        assert!(p.intersects(&r(0.0, 0.0, 2.0, 2.0)));
        assert!(p.intersects(&p));
        let seg = r(0.0, 1.0, 5.0, 1.0); // horizontal segment
        assert!(seg.intersects(&r(2.0, 0.0, 3.0, 2.0)));
    }

    #[test]
    fn union_covers_both() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, r(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn union_with_empty_is_identity() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        assert_eq!(a.union(&Rect::empty()), a);
        assert_eq!(Rect::empty().union(&a), a);
        assert!(Rect::empty().is_empty());
        assert!(!Rect::empty().intersects(&a));
    }

    #[test]
    fn intersection_matches_predicate() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.intersection(&b), Some(r(1.0, 1.0, 2.0, 2.0)));
        assert_eq!(a.intersection(&r(5.0, 5.0, 6.0, 6.0)), None);
    }

    #[test]
    fn area_and_enlargement() {
        let a = r(0.0, 0.0, 2.0, 3.0);
        assert_eq!(a.area(), 6.0);
        let b = r(2.0, 0.0, 4.0, 3.0);
        assert_eq!(a.enlargement(&b), 6.0);
        assert_eq!(a.enlargement(&r(0.5, 0.5, 1.0, 1.0)), 0.0);
    }

    #[test]
    fn center_is_inside() {
        let a = r(-2.0, 1.0, 4.0, 9.0);
        assert!(a.contains_point(a.center()));
        assert_eq!(a.center(), Point::new(1.0, 5.0));
    }

    #[test]
    fn lower_y_ordering() {
        let a = r(0.0, 1.0, 1.0, 2.0);
        let b = r(0.0, 2.0, 1.0, 3.0);
        assert_eq!(a.cmp_by_lower_y(&b), std::cmp::Ordering::Less);
        assert_eq!(b.cmp_by_lower_y(&a), std::cmp::Ordering::Greater);
        assert_eq!(a.cmp_by_lower_y(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn interval_projections() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        assert_eq!(a.x_interval(), Interval::new(1.0, 3.0));
        assert_eq!(a.y_interval(), Interval::new(2.0, 4.0));
    }
}
