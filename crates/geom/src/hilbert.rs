//! Hilbert space-filling curve.
//!
//! The R-trees used in the paper's experiments are *packed* trees bulk-loaded
//! with the Hilbert heuristic of Kamel & Faloutsos: rectangles are sorted by
//! the Hilbert value of their centre point and then packed into leaves in that
//! order. The Hilbert curve preserves spatial locality far better than, e.g.,
//! row-major or Z-order sweeps, which is what gives the bulk-loaded tree its
//! good clustering (and, as Section 6.2 of the paper discusses, its largely
//! sequential on-disk layout).

/// Order of the discrete Hilbert curve: coordinates are quantised to
/// `2^HILBERT_ORDER` cells per axis.
pub const HILBERT_ORDER: u32 = 16;

/// Number of cells per axis of the discrete grid.
pub const HILBERT_SIDE: u32 = 1 << HILBERT_ORDER;

/// Maps discrete grid coordinates to their index along the Hilbert curve.
///
/// `x` and `y` must be smaller than [`HILBERT_SIDE`]. The returned value is in
/// `0 .. HILBERT_SIDE^2`.
pub fn xy_to_hilbert(x: u32, y: u32) -> u64 {
    xy_to_hilbert_on_side(HILBERT_SIDE, x, y)
}

/// [`xy_to_hilbert`] on a curve covering a `side` × `side` grid instead of
/// the full [`HILBERT_SIDE`] grid. `side` must be a power of two; `x` and `y`
/// must be smaller than `side`. The returned value is in `0 .. side^2`.
///
/// Coarse curves are used where a full-resolution Hilbert value would be
/// wasted — e.g. ordering the cells of the parallel executor's shard grid.
pub fn xy_to_hilbert_on_side(side: u32, mut x: u32, mut y: u32) -> u64 {
    debug_assert!(side.is_power_of_two());
    debug_assert!(x < side && y < side);
    let mut rx: u32;
    let mut ry: u32;
    let mut d: u64 = 0;
    let mut s: u32 = side / 2;
    while s > 0 {
        rx = u32::from((x & s) > 0);
        ry = u32::from((y & s) > 0);
        d += u64::from(s) * u64::from(s) * u64::from((3 * rx) ^ ry);
        // Rotate the quadrant (the forward transform rotates within the full
        // grid, hence side - 1 rather than s - 1).
        if ry == 0 {
            if rx == 1 {
                x = (side - 1).wrapping_sub(x);
                y = (side - 1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Inverse of [`xy_to_hilbert`]: maps a curve index back to grid coordinates.
pub fn hilbert_to_xy(mut d: u64) -> (u32, u32) {
    let mut x: u32 = 0;
    let mut y: u32 = 0;
    let mut rx: u32;
    let mut ry: u32;
    let mut s: u64 = 1;
    while s < u64::from(HILBERT_SIDE) {
        rx = 1 & (d / 2) as u32;
        ry = 1 & ((d as u32) ^ rx);
        // Rotate the quadrant.
        if ry == 0 {
            if rx == 1 {
                x = (s as u32).wrapping_sub(1).wrapping_sub(x);
                y = (s as u32).wrapping_sub(1).wrapping_sub(y);
            }
            std::mem::swap(&mut x, &mut y);
        }
        x += (s as u32) * rx;
        y += (s as u32) * ry;
        d /= 4;
        s *= 2;
    }
    (x, y)
}

/// Quantises a floating-point coordinate inside `[lo, hi]` onto the discrete
/// Hilbert grid. Values outside the range are clamped.
#[inline]
pub fn quantize(v: f32, lo: f32, hi: f32) -> u32 {
    // Degenerate or NaN range: everything maps to cell 0.
    if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
        return 0;
    }
    let t = ((f64::from(v) - f64::from(lo)) / (f64::from(hi) - f64::from(lo))).clamp(0.0, 1.0);
    let cell = (t * f64::from(HILBERT_SIDE - 1)).round() as u32;
    cell.min(HILBERT_SIDE - 1)
}

/// Hilbert value of a point inside the bounding box `space`, used as the
/// bulk-loading sort key.
pub fn hilbert_value(x: f32, y: f32, space: &crate::Rect) -> u64 {
    let qx = quantize(x, space.lo.x, space.hi.x);
    let qy = quantize(y, space.lo.y, space.hi.y);
    xy_to_hilbert(qx, qy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    #[test]
    fn roundtrip_small_coordinates() {
        for x in 0..64u32 {
            for y in 0..64u32 {
                let d = xy_to_hilbert(x, y);
                assert_eq!(hilbert_to_xy(d), (x, y), "roundtrip failed for ({x},{y})");
            }
        }
    }

    #[test]
    fn coarse_curve_matches_the_reference_order() {
        // An order-3 (8x8) curve must be a bijection onto 0..64 and keep the
        // adjacency property.
        let mut seen = std::collections::HashSet::new();
        for x in 0..8u32 {
            for y in 0..8u32 {
                seen.insert(xy_to_hilbert_on_side(8, x, y));
            }
        }
        assert_eq!(seen.len(), 64);
        assert!(seen.iter().all(|&d| d < 64));
        // The full-resolution entry point agrees with the dedicated function.
        assert_eq!(xy_to_hilbert_on_side(HILBERT_SIDE, 123, 456), xy_to_hilbert(123, 456));
    }

    #[test]
    fn curve_is_a_bijection_on_a_small_grid() {
        // Exhaustively check that a 32x32 sub-grid maps to distinct indices.
        let mut seen = std::collections::HashSet::new();
        for x in 0..32u32 {
            for y in 0..32u32 {
                assert!(seen.insert(xy_to_hilbert(x, y)));
            }
        }
        assert_eq!(seen.len(), 32 * 32);
    }

    #[test]
    fn consecutive_indices_are_adjacent_cells() {
        // The defining property of the Hilbert curve: consecutive indices map
        // to grid cells at L1 distance exactly 1.
        for d in 0..4096u64 {
            let (x0, y0) = hilbert_to_xy(d);
            let (x1, y1) = hilbert_to_xy(d + 1);
            let dist = (i64::from(x0) - i64::from(x1)).abs() + (i64::from(y0) - i64::from(y1)).abs();
            assert_eq!(dist, 1, "indices {d} and {} are not adjacent", d + 1);
        }
    }

    #[test]
    fn quantize_clamps_and_spans_range() {
        assert_eq!(quantize(-10.0, 0.0, 1.0), 0);
        assert_eq!(quantize(10.0, 0.0, 1.0), HILBERT_SIDE - 1);
        assert_eq!(quantize(0.0, 0.0, 1.0), 0);
        assert_eq!(quantize(1.0, 0.0, 1.0), HILBERT_SIDE - 1);
        // Degenerate range does not panic.
        assert_eq!(quantize(5.0, 3.0, 3.0), 0);
    }

    #[test]
    fn hilbert_value_orders_nearby_points_together() {
        let space = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let a = hilbert_value(10.0, 10.0, &space);
        let b = hilbert_value(11.0, 10.0, &space);
        let far = hilbert_value(990.0, 990.0, &space);
        // Nearby points should be much closer on the curve than far-away ones.
        let near_gap = a.abs_diff(b);
        let far_gap = a.abs_diff(far);
        assert!(near_gap < far_gap);
    }
}
