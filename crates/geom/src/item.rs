//! Identified MBR records — the 20-byte data-file layout of the paper.

use crate::{Point, Rect};

/// Object identifier carried through the filter step.
///
/// The paper's data files store a 4-byte identifier per MBR, and each output
/// item is a pair of identifiers of overlapping MBRs.
pub type ObjectId = u32;

/// Size in bytes of a serialized [`Item`]: four `f32` coordinates plus a
/// 4-byte identifier, exactly as in the TIGER MBR files used by the paper.
pub const ITEM_BYTES: usize = 20;

/// A minimal bounding rectangle together with the identifier of the spatial
/// object it approximates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Item {
    /// The object's MBR.
    pub rect: Rect,
    /// The object's identifier.
    pub id: ObjectId,
}

impl Item {
    /// Creates a new identified rectangle.
    #[inline]
    pub fn new(rect: Rect, id: ObjectId) -> Self {
        Item { rect, id }
    }

    /// Serializes the item into its fixed 20-byte little-endian layout.
    #[inline]
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= ITEM_BYTES, "output buffer too small for Item");
        out[0..4].copy_from_slice(&self.rect.lo.x.to_le_bytes());
        out[4..8].copy_from_slice(&self.rect.lo.y.to_le_bytes());
        out[8..12].copy_from_slice(&self.rect.hi.x.to_le_bytes());
        out[12..16].copy_from_slice(&self.rect.hi.y.to_le_bytes());
        out[16..20].copy_from_slice(&self.id.to_le_bytes());
    }

    /// Deserializes an item from its fixed 20-byte little-endian layout.
    #[inline]
    pub fn decode(buf: &[u8]) -> Self {
        assert!(buf.len() >= ITEM_BYTES, "input buffer too small for Item");
        let f = |i: usize| f32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        let id = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
        Item {
            rect: Rect {
                lo: Point::new(f(0), f(4)),
                hi: Point::new(f(8), f(12)),
            },
            id,
        }
    }

    /// Sweep order: by lower y-coordinate, ties broken deterministically.
    #[inline]
    pub fn cmp_by_lower_y(&self, other: &Item) -> std::cmp::Ordering {
        self.rect
            .cmp_by_lower_y(&other.rect)
            .then_with(|| self.id.cmp(&other.id))
    }

    /// Packed radix key of the sweep order: the order-preserving bit images
    /// of `lo.y` (high half) and `lo.x` (low half).
    ///
    /// Comparing two keys with a single branchless `u64` comparison is
    /// equivalent to comparing `(lo.y, lo.x)` lexicographically with
    /// [`ord_f32`](crate::rect::ord_f32) for every non-NaN coordinate (`-0.0` and
    /// `+0.0` map to the same key). The external sort precomputes this key
    /// once per record and falls back to the full [`Item::cmp_by_lower_y`]
    /// comparator only on key collisions, which removes the multi-field
    /// float-comparison chain from the hot sort loop.
    #[inline]
    pub fn sweep_key(&self) -> u64 {
        ((f32_order_key(self.rect.lo.y) as u64) << 32) | f32_order_key(self.rect.lo.x) as u64
    }
}

/// Order-preserving bit image of an `f32`: `f32_order_key(a) <
/// f32_order_key(b)` iff [`ord_f32`](crate::rect::ord_f32)`(a, b)` is
/// `Less` (with `-0.0 == +0.0`, and every NaN mapped to the maximum key —
/// equal to each other and above all numbers, exactly like `ord_f32`).
#[inline]
fn f32_order_key(x: f32) -> u32 {
    if x.is_nan() {
        // `ord_f32` treats all NaNs as equal and larger than any number;
        // mapping them to one maximal key keeps the keyed sorts consistent
        // with the comparators even for sign-bit NaNs.
        return u32::MAX;
    }
    // `x + 0.0` collapses -0.0 onto +0.0 so the key order matches the
    // `partial_cmp`-based comparators, which treat the two zeroes as equal.
    let bits = (x + 0.0).to_bits();
    if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    }
}

/// Sorts a slice of items into sweep order (ascending lower y-coordinate).
pub fn sort_by_lower_y(items: &mut [Item]) {
    items.sort_unstable_by(Item::cmp_by_lower_y);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let it = item(1.25, -3.5, 7.75, 0.0, 0xDEAD_BEEF);
        let mut buf = [0u8; ITEM_BYTES];
        it.encode(&mut buf);
        assert_eq!(Item::decode(&buf), it);
    }

    #[test]
    fn encoded_size_matches_paper_record_size() {
        assert_eq!(ITEM_BYTES, 20);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn encode_rejects_short_buffer() {
        let it = item(0.0, 0.0, 1.0, 1.0, 1);
        let mut buf = [0u8; ITEM_BYTES - 1];
        it.encode(&mut buf);
    }

    #[test]
    fn sweep_key_orders_like_the_comparator() {
        let samples = [
            item(-5.5, -3.25, 0.0, 0.0, 1),
            item(0.0, -3.25, 1.0, 1.0, 2),
            item(-0.0, -3.25, 1.0, 1.0, 3), // -0.0 must collapse onto +0.0
            item(0.0, 0.0, 1.0, 1.0, 4),
            item(7.5, 0.0, 8.0, 1.0, 5),
            item(1e-20, 2.5e7, 1.0, 3.0e7, 6),
            item(f32::MAX, f32::MAX, f32::MAX, f32::MAX, 7),
        ];
        for a in &samples {
            for b in &samples {
                let by_key = a.sweep_key().cmp(&b.sweep_key());
                let by_cmp = a.rect.cmp_by_lower_y(&b.rect);
                if by_key != std::cmp::Ordering::Equal {
                    assert_eq!(by_key, by_cmp, "{a:?} vs {b:?}");
                } else {
                    // Key collision: lo.y and lo.x are order-equal, so the
                    // comparator must have fallen through its first two
                    // fields too.
                    assert_eq!(a.rect.lo.y, b.rect.lo.y);
                }
            }
        }
    }

    #[test]
    fn sweep_key_treats_all_nans_as_one_maximal_key() {
        let neg_nan = f32::from_bits(0xFFC0_0000);
        assert!(neg_nan.is_nan() && neg_nan.is_sign_negative());
        let a = Item::new(
            Rect {
                lo: crate::Point::new(0.0, neg_nan),
                hi: crate::Point::new(1.0, f32::NAN),
            },
            1,
        );
        let b = item(0.0, f32::MAX, 1.0, f32::MAX, 2);
        let c = Item::new(
            Rect {
                lo: crate::Point::new(0.0, f32::NAN),
                hi: crate::Point::new(1.0, f32::NAN),
            },
            3,
        );
        // Both NaN signs share the maximal key, above every number — the
        // same order ord_f32 gives the comparator-based sorts.
        assert_eq!(a.sweep_key() >> 32, u64::from(u32::MAX));
        assert_eq!(a.sweep_key() >> 32, c.sweep_key() >> 32);
        assert!(a.sweep_key() > b.sweep_key());
        assert_eq!(
            a.rect.cmp_by_lower_y(&b.rect),
            std::cmp::Ordering::Greater,
            "key order must agree with the comparator"
        );
    }

    #[test]
    fn sort_is_by_lower_y_then_stable_tiebreak() {
        let mut v = vec![
            item(0.0, 3.0, 1.0, 4.0, 1),
            item(0.0, 1.0, 1.0, 9.0, 2),
            item(5.0, 1.0, 6.0, 2.0, 3),
            item(0.0, 2.0, 1.0, 2.5, 4),
        ];
        sort_by_lower_y(&mut v);
        let ys: Vec<f32> = v.iter().map(|i| i.rect.lo.y).collect();
        assert_eq!(ys, vec![1.0, 1.0, 2.0, 3.0]);
        // Ties broken by lower x: item 2 (x=0) before item 3 (x=5).
        assert_eq!(v[0].id, 2);
        assert_eq!(v[1].id, 3);
    }
}
