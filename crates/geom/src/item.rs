//! Identified MBR records — the 20-byte data-file layout of the paper.

use crate::{Point, Rect};

/// Object identifier carried through the filter step.
///
/// The paper's data files store a 4-byte identifier per MBR, and each output
/// item is a pair of identifiers of overlapping MBRs.
pub type ObjectId = u32;

/// Size in bytes of a serialized [`Item`]: four `f32` coordinates plus a
/// 4-byte identifier, exactly as in the TIGER MBR files used by the paper.
pub const ITEM_BYTES: usize = 20;

/// A minimal bounding rectangle together with the identifier of the spatial
/// object it approximates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Item {
    /// The object's MBR.
    pub rect: Rect,
    /// The object's identifier.
    pub id: ObjectId,
}

impl Item {
    /// Creates a new identified rectangle.
    #[inline]
    pub fn new(rect: Rect, id: ObjectId) -> Self {
        Item { rect, id }
    }

    /// Serializes the item into its fixed 20-byte little-endian layout.
    #[inline]
    pub fn encode(&self, out: &mut [u8]) {
        assert!(out.len() >= ITEM_BYTES, "output buffer too small for Item");
        out[0..4].copy_from_slice(&self.rect.lo.x.to_le_bytes());
        out[4..8].copy_from_slice(&self.rect.lo.y.to_le_bytes());
        out[8..12].copy_from_slice(&self.rect.hi.x.to_le_bytes());
        out[12..16].copy_from_slice(&self.rect.hi.y.to_le_bytes());
        out[16..20].copy_from_slice(&self.id.to_le_bytes());
    }

    /// Deserializes an item from its fixed 20-byte little-endian layout.
    #[inline]
    pub fn decode(buf: &[u8]) -> Self {
        assert!(buf.len() >= ITEM_BYTES, "input buffer too small for Item");
        let f = |i: usize| f32::from_le_bytes([buf[i], buf[i + 1], buf[i + 2], buf[i + 3]]);
        let id = u32::from_le_bytes([buf[16], buf[17], buf[18], buf[19]]);
        Item {
            rect: Rect {
                lo: Point::new(f(0), f(4)),
                hi: Point::new(f(8), f(12)),
            },
            id,
        }
    }

    /// Sweep order: by lower y-coordinate, ties broken deterministically.
    #[inline]
    pub fn cmp_by_lower_y(&self, other: &Item) -> std::cmp::Ordering {
        self.rect
            .cmp_by_lower_y(&other.rect)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// Sorts a slice of items into sweep order (ascending lower y-coordinate).
pub fn sort_by_lower_y(items: &mut [Item]) {
    items.sort_unstable_by(Item::cmp_by_lower_y);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(x0: f32, y0: f32, x1: f32, y1: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x0, y0, x1, y1), id)
    }

    #[test]
    fn encode_decode_roundtrip() {
        let it = item(1.25, -3.5, 7.75, 0.0, 0xDEAD_BEEF);
        let mut buf = [0u8; ITEM_BYTES];
        it.encode(&mut buf);
        assert_eq!(Item::decode(&buf), it);
    }

    #[test]
    fn encoded_size_matches_paper_record_size() {
        assert_eq!(ITEM_BYTES, 20);
    }

    #[test]
    #[should_panic(expected = "output buffer too small")]
    fn encode_rejects_short_buffer() {
        let it = item(0.0, 0.0, 1.0, 1.0, 1);
        let mut buf = [0u8; ITEM_BYTES - 1];
        it.encode(&mut buf);
    }

    #[test]
    fn sort_is_by_lower_y_then_stable_tiebreak() {
        let mut v = vec![
            item(0.0, 3.0, 1.0, 4.0, 1),
            item(0.0, 1.0, 1.0, 9.0, 2),
            item(5.0, 1.0, 6.0, 2.0, 3),
            item(0.0, 2.0, 1.0, 2.5, 4),
        ];
        sort_by_lower_y(&mut v);
        let ys: Vec<f32> = v.iter().map(|i| i.rect.lo.y).collect();
        assert_eq!(ys, vec![1.0, 1.0, 2.0, 3.0]);
        // Ties broken by lower x: item 2 (x=0) before item 3 (x=5).
        assert_eq!(v[0].id, 2);
        assert_eq!(v[1].id, 3);
    }
}
