//! 1-D closed intervals.
//!
//! The plane-sweep reduction turns the 2-D rectangle-intersection problem into
//! a dynamic 1-D *interval* intersection problem: only rectangles cut by the
//! same horizontal sweep line need to be tested, and for those only the
//! x-projections matter.

/// A closed 1-D interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Interval {
    /// Lower endpoint.
    pub lo: f32,
    /// Upper endpoint.
    pub hi: f32,
}

impl Interval {
    /// Creates a new interval.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lo > hi`.
    #[inline]
    pub fn new(lo: f32, hi: f32) -> Self {
        debug_assert!(lo <= hi, "interval endpoints out of order");
        Interval { lo, hi }
    }

    /// Length of the interval.
    #[inline]
    pub fn len(&self) -> f32 {
        (self.hi - self.lo).max(0.0)
    }

    /// Returns `true` for a degenerate (single-point) interval.
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        self.lo == self.hi
    }

    /// Closed-interval overlap test (touching intervals overlap).
    #[inline]
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }

    /// Returns `true` if `x` lies inside the interval.
    #[inline]
    pub fn contains(&self, x: f32) -> bool {
        self.lo <= x && x <= self.hi
    }

    /// Smallest interval covering both operands.
    #[inline]
    pub fn union(&self, other: &Interval) -> Interval {
        Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_cases() {
        let a = Interval::new(0.0, 2.0);
        assert!(a.overlaps(&Interval::new(1.0, 3.0)));
        assert!(a.overlaps(&Interval::new(2.0, 3.0))); // touching
        assert!(a.overlaps(&Interval::new(-1.0, 0.0))); // touching
        assert!(!a.overlaps(&Interval::new(2.5, 3.0)));
        assert!(a.overlaps(&Interval::new(0.5, 1.5))); // containment
    }

    #[test]
    fn overlap_is_symmetric() {
        let a = Interval::new(0.0, 2.0);
        let b = Interval::new(1.5, 5.0);
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn contains_and_len() {
        let a = Interval::new(1.0, 4.0);
        assert!(a.contains(1.0));
        assert!(a.contains(4.0));
        assert!(!a.contains(4.5));
        assert_eq!(a.len(), 3.0);
        assert!(!a.is_degenerate());
        assert!(Interval::new(2.0, 2.0).is_degenerate());
    }

    #[test]
    fn union_covers_operands() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(3.0, 4.0);
        let u = a.union(&b);
        assert_eq!(u, Interval::new(0.0, 4.0));
        assert!(u.overlaps(&a) && u.overlaps(&b));
    }
}
