//! 2-D points.

/// A two-dimensional point with single-precision coordinates.
///
/// The paper stores each MBR as four 4-byte coordinates, so the natural
/// coordinate type for this reproduction is `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate (the plane-sweep direction used by the paper).
    pub y: f32,
}

impl Point {
    /// Creates a new point.
    #[inline]
    pub fn new(x: f32, y: f32) -> Self {
        Point { x, y }
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Squared Euclidean distance to `other`.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = f64::from(self.x) - f64::from(other.x);
        let dy = f64::from(self.y) - f64::from(other.y);
        dx * dx + dy * dy
    }
}

impl From<(f32, f32)> for Point {
    fn from((x, y): (f32, f32)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(3.0, 5.0));
    }

    #[test]
    fn distance_sq_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance_sq(b), b.distance_sq(a));
        assert_eq!(a.distance_sq(a), 0.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.5, -1.0).into();
        assert_eq!(p, Point::new(2.5, -1.0));
    }
}
