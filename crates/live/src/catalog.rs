//! LSM-style live dataset handles and their generation snapshots.
//!
//! A [`LiveDataset`] layers three tiers, youngest to oldest:
//!
//! 1. the gauged in-memory [`Memtable`] of not-yet-persisted inserts,
//! 2. zero or more sorted **delta runs** on the device (each one flushed
//!    memtable, sweep-key ordered),
//! 3. the immutable **base run** with its bulk-loaded R-tree — exactly the
//!    representation the static catalog persists.
//!
//! [`LiveDataset::append`] buffers inserts and flushes the memtable into a
//! new delta run when its reservation reaches the configured threshold;
//! once enough deltas accumulate, [`LiveDataset::compact`] folds base +
//! deltas into a new base via the external sort (which degenerates into a
//! k-way merge of the already-sorted runs on the packed `u64` sweep key)
//! and rebuilds the R-tree. Every mutation bumps the **generation**.
//!
//! Reads never lock ingestion out: [`LiveDataset::snapshot`] clones the
//! immutable run handles and freezes a sorted copy of the memtable. Device
//! pages of persisted runs are never rewritten (compaction allocates new
//! ones), so a snapshot stays valid however far ingestion advances — and it
//! works unchanged on a forked worker environment layered over a device
//! snapshot, which is how the service executes streaming joins.

use std::collections::HashMap;
use std::sync::Arc;

use usj_geom::{Item, Rect};
use usj_io::{extsort, ItemStream, ItemStreamReader, ItemStreamWriter, SimEnv};
use usj_rtree::RTree;

use crate::memtable::{frozen_sorted, Memtable};
use crate::{LiveError, Result};

/// Logical block size (in pages) of live base and delta runs.
///
/// Much smaller than [`usj_io::stream::DEFAULT_PAGES_PER_BLOCK`] on purpose: a
/// snapshot cursor's reader claims one block of records from the memory
/// gauge per refill, so the block size is the streaming-read granularity.
/// Batch-oriented runs want big blocks (fewer seeks); a live run is read
/// incrementally by symmetric joins that must coexist with the sweep
/// structures inside a worker's admission budget, so it trades a few extra
/// blocks for a small, steady per-cursor footprint.
pub const LIVE_PAGES_PER_BLOCK: u64 = 2;

/// Tuning knobs of a live dataset.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Memtable footprint (bytes) that triggers a flush to a delta run.
    pub flush_threshold_bytes: usize,
    /// Delta-run count that triggers automatic compaction (0 disables
    /// auto-compaction; [`LiveDataset::compact`] can still be called).
    pub compact_after_deltas: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            flush_threshold_bytes: 256 * 1024,
            compact_after_deltas: 4,
        }
    }
}

/// One flushed memtable: a sweep-key-sorted run on the device.
#[derive(Debug, Clone)]
pub struct DeltaRun {
    run: ItemStream,
    bbox: Rect,
}

impl DeltaRun {
    /// Records in the run.
    pub fn len(&self) -> u64 {
        self.run.len()
    }

    /// Returns `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Bounding box of the run.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }
}

/// Counters of one live dataset's ingestion history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Items appended since creation.
    pub appended: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Items written to delta runs by flushes.
    pub flushed_items: u64,
    /// Items merged into new bases by compactions.
    pub compacted_items: u64,
}

/// An LSM-style live dataset: immutable base + delta runs + memtable.
#[derive(Debug)]
pub struct LiveDataset {
    name: String,
    generation: u64,
    base: ItemStream,
    tree: RTree,
    bbox: Rect,
    deltas: Vec<DeltaRun>,
    memtable: Memtable,
    config: LiveConfig,
    stats: LiveStats,
}

impl LiveDataset {
    /// Creates a live dataset from an initial batch of records: externally
    /// sorts them into the base run and bulk-loads its R-tree — the same
    /// preparation pipeline as a static catalog registration.
    pub fn create(
        env: &mut SimEnv,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<Self> {
        let stream = ItemStream::from_items_with_block(env, base_items, LIVE_PAGES_PER_BLOCK)?;
        let (base, sort_stats) =
            extsort::external_sort_by_key(env, &stream, Item::sweep_key, Item::cmp_by_lower_y)?;
        let bbox = if sort_stats.bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            sort_stats.bbox
        };
        let tree = RTree::bulk_load_stream(env, &base)?;
        Ok(LiveDataset {
            name: name.to_string(),
            generation: 0,
            base,
            tree,
            bbox,
            deltas: Vec::new(),
            memtable: Memtable::new(env),
            config,
            stats: LiveStats::default(),
        })
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generation counter: bumped by every flush and compaction, so two
    /// snapshots with equal generations see identical data.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total records visible to a snapshot taken now.
    pub fn len(&self) -> u64 {
        self.base.len()
            + self.deltas.iter().map(DeltaRun::len).sum::<u64>()
            + self.memtable.len() as u64
    }

    /// Returns `true` when no record is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounding box of everything visible (base, deltas and memtable).
    pub fn bbox(&self) -> Rect {
        let mut bbox = self.bbox;
        for d in &self.deltas {
            bbox = bbox.union(&d.bbox);
        }
        if !self.memtable.bbox().is_empty() {
            bbox = bbox.union(&self.memtable.bbox());
        }
        bbox
    }

    /// The base run's R-tree (rebuilt by compaction; deltas and memtable
    /// are *not* indexed — streaming consumers merge them by sweep key).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Delta runs currently awaiting compaction.
    pub fn delta_runs(&self) -> &[DeltaRun] {
        &self.deltas
    }

    /// Items currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Ingestion counters.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// Appends a batch of records.
    ///
    /// Inserts are buffered in the gauged memtable; when its footprint
    /// reaches the flush threshold it is drained into a sorted delta run on
    /// the device (charged I/O), and when enough deltas accumulate a merge
    /// compaction folds them into a new base. Either maintenance step may
    /// run zero or more times per call — the caller just appends.
    pub fn append(&mut self, env: &mut SimEnv, items: &[Item]) -> Result<()> {
        for &item in items {
            self.memtable.insert(item)?;
            self.stats.appended += 1;
            if self.memtable.bytes() >= self.config.flush_threshold_bytes {
                self.flush(env)?;
            }
        }
        Ok(())
    }

    /// Drains the memtable into a new sorted delta run (no-op when empty),
    /// then compacts if the delta count reached the configured threshold.
    pub fn flush(&mut self, env: &mut SimEnv) -> Result<()> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        let items = self.memtable.drain_sorted();
        let mut bbox = Rect::empty();
        let mut writer = ItemStreamWriter::new(env, LIVE_PAGES_PER_BLOCK);
        for &item in &items {
            bbox = if bbox.is_empty() {
                item.rect
            } else {
                bbox.union(&item.rect)
            };
            writer.push(env, item)?;
        }
        let run = writer.finish(env)?;
        self.stats.flushes += 1;
        self.stats.flushed_items += items.len() as u64;
        self.deltas.push(DeltaRun { run, bbox });
        self.generation += 1;
        if self.config.compact_after_deltas > 0
            && self.deltas.len() >= self.config.compact_after_deltas
        {
            self.compact(env)?;
        }
        Ok(())
    }

    /// Merge compaction: folds base + every delta run into a new base run
    /// and rebuilds the R-tree.
    ///
    /// The runs are concatenated and pushed through the external sort on
    /// the packed sweep key; since every input run is already sorted, run
    /// formation emits large presorted runs and the sort degenerates into
    /// the k-way merge — all I/O charged like any other maintenance work.
    /// The old base pages stay valid on the device, which is what keeps
    /// earlier snapshots readable.
    pub fn compact(&mut self, env: &mut SimEnv) -> Result<()> {
        if self.deltas.is_empty() {
            return Ok(());
        }
        let mut concat = ItemStreamWriter::new(env, LIVE_PAGES_PER_BLOCK);
        let mut reader = self.base.reader();
        while let Some(item) = reader.next(env)? {
            concat.push(env, item)?;
        }
        let mut merged_items = self.base.len();
        for delta in &self.deltas {
            let mut reader = delta.run.reader();
            while let Some(item) = reader.next(env)? {
                concat.push(env, item)?;
            }
            merged_items += delta.run.len();
        }
        let concatenated = concat.finish(env)?;
        let (base, sort_stats) = extsort::external_sort_by_key(
            env,
            &concatenated,
            Item::sweep_key,
            Item::cmp_by_lower_y,
        )?;
        self.bbox = if sort_stats.bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            sort_stats.bbox
        };
        self.tree = RTree::bulk_load_stream(env, &base)?;
        self.base = base;
        self.deltas.clear();
        self.generation += 1;
        self.stats.compactions += 1;
        self.stats.compacted_items += merged_items;
        Ok(())
    }

    /// Takes a consistent generation snapshot: immutable handles of the
    /// base and delta runs plus a frozen sorted copy of the memtable.
    ///
    /// The snapshot stays valid while ingestion continues (persisted pages
    /// are never rewritten) and can be read from any environment whose
    /// device holds those pages — including a service worker's fork over a
    /// device snapshot.
    pub fn snapshot(&self) -> LiveSnapshot {
        let mut runs = Vec::with_capacity(1 + self.deltas.len());
        runs.push(self.base.clone());
        for d in &self.deltas {
            runs.push(d.run.clone());
        }
        LiveSnapshot {
            generation: self.generation,
            runs,
            memtable: Arc::new(frozen_sorted(self.memtable.items())),
            bbox: self.bbox(),
        }
    }
}

/// Identifier of a live dataset within one [`LiveCatalog`] (its
/// registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LiveId(pub u32);

/// A named registry of live datasets.
#[derive(Debug, Default)]
pub struct LiveCatalog {
    datasets: Vec<LiveDataset>,
    by_name: HashMap<String, u32>,
}

impl LiveCatalog {
    /// An empty registry.
    pub fn new() -> Self {
        LiveCatalog::default()
    }

    /// Number of registered live datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Returns `true` when no live dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Registers a live dataset under `name` with an initial base batch.
    pub fn register(
        &mut self,
        env: &mut SimEnv,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<LiveId> {
        if self.by_name.contains_key(name) {
            return Err(LiveError::DuplicateDataset(name.to_string()));
        }
        let dataset = LiveDataset::create(env, name, base_items, config)?;
        let id = LiveId(self.datasets.len() as u32);
        self.by_name.insert(name.to_string(), id.0);
        self.datasets.push(dataset);
        Ok(id)
    }

    /// Looks a live dataset up by identifier.
    pub fn get(&self, id: LiveId) -> Option<&LiveDataset> {
        self.datasets.get(id.0 as usize)
    }

    /// Looks a live dataset up by name.
    pub fn lookup(&self, name: &str) -> Option<(LiveId, &LiveDataset)> {
        let idx = *self.by_name.get(name)?;
        Some((LiveId(idx), &self.datasets[idx as usize]))
    }

    /// Appends records to the live dataset registered under `name`.
    pub fn append(&mut self, env: &mut SimEnv, name: &str, items: &[Item]) -> Result<()> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| LiveError::UnknownDataset(name.to_string()))?;
        self.datasets[idx as usize].append(env, items)
    }

    /// Mutable access by name (flush/compact maintenance).
    pub fn get_mut_by_name(&mut self, name: &str) -> Option<&mut LiveDataset> {
        let idx = *self.by_name.get(name)?;
        Some(&mut self.datasets[idx as usize])
    }

    /// Iterates over the registered live datasets in registration order.
    pub fn datasets(&self) -> impl Iterator<Item = &LiveDataset> {
        self.datasets.iter()
    }
}

/// A consistent, immutable view of one live dataset at one generation.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    generation: u64,
    /// Sweep-key-sorted runs, oldest (base) first.
    runs: Vec<ItemStream>,
    /// Frozen sorted copy of the memtable at snapshot time.
    memtable: Arc<Vec<Item>>,
    bbox: Rect,
}

impl LiveSnapshot {
    /// The generation this snapshot captured.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total records in the snapshot.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(ItemStream::len).sum::<u64>() + self.memtable.len() as u64
    }

    /// Returns `true` when the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persisted runs in the snapshot (base + deltas).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Bounding box of the snapshot.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// A streaming merge cursor over every tier, delivering records in
    /// ascending sweep-key order *without* materialising or re-sorting
    /// anything — this is what lets a streaming join emit pairs while the
    /// scan is still running.
    pub fn cursor(&self) -> SnapshotCursor {
        SnapshotCursor {
            readers: self.runs.iter().map(ItemStream::reader).collect(),
            memtable: Arc::clone(&self.memtable),
            mem_pos: 0,
        }
    }

    /// Materialises the merged snapshot as one sorted stream on the device
    /// (charged I/O) — the "equivalent snapshot" an offline join runs on.
    pub fn to_stream(&self, env: &mut SimEnv) -> Result<ItemStream> {
        let mut writer = ItemStreamWriter::with_default_block(env);
        let mut cursor = self.cursor();
        while let Some(item) = cursor.next(env)? {
            writer.push(env, item)?;
        }
        Ok(writer.finish(env)?)
    }
}

/// Streaming k-way merge over a snapshot's runs and frozen memtable.
#[derive(Debug)]
pub struct SnapshotCursor {
    readers: Vec<ItemStreamReader>,
    memtable: Arc<Vec<Item>>,
    mem_pos: usize,
}

impl SnapshotCursor {
    /// The next record in ascending sweep-key order, or `None` when every
    /// tier is exhausted. Run pages are read (and charged) on demand.
    pub fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        // The run count is 1 + pending deltas — small by construction
        // (compaction folds deltas back) — so a linear scan over the heads
        // beats heap bookkeeping.
        let mut best: Option<(usize, u64)> = None;
        for (i, reader) in self.readers.iter_mut().enumerate() {
            if let Some(head) = reader.peek(env)? {
                let key = head.sweep_key();
                if best.map_or(true, |(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        let mem_key = self.memtable.get(self.mem_pos).map(|it| it.sweep_key());
        if let Some(key) = mem_key {
            if best.map_or(true, |(_, k)| key < k) {
                let item = self.memtable[self.mem_pos];
                self.mem_pos += 1;
                return Ok(Some(item));
            }
        }
        match best {
            Some((i, _)) => Ok(self.readers[i].next(env)?),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn item(x: f32, y: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x, y, x + 2.0, y + 2.0), id)
    }

    fn batch(n: u32, id_base: u32, seed: u32) -> Vec<Item> {
        // Deterministic scattered rectangles, deliberately unsorted.
        (0..n)
            .map(|i| {
                let h = (i.wrapping_mul(2_654_435_761).wrapping_add(seed)) % 10_000;
                item((h % 97) as f32, (h % 89) as f32, id_base + i)
            })
            .collect()
    }

    fn tiny_config() -> LiveConfig {
        LiveConfig {
            flush_threshold_bytes: 64 * usj_geom::ITEM_BYTES,
            compact_after_deltas: 3,
        }
    }

    #[test]
    fn snapshot_merges_all_tiers_in_sweep_key_order() {
        let mut env = env();
        let base = batch(200, 0, 1);
        let mut ds = LiveDataset::create(&mut env, "live", &base, tiny_config()).unwrap();
        ds.append(&mut env, &batch(150, 10_000, 2)).unwrap();
        assert_eq!(ds.len(), 350);

        let snap = ds.snapshot();
        assert_eq!(snap.len(), 350);
        let mut cursor = snap.cursor();
        let mut seen = Vec::new();
        let mut last_key = 0u64;
        while let Some(it) = cursor.next(&mut env).unwrap() {
            assert!(it.sweep_key() >= last_key, "cursor must be sorted");
            last_key = it.sweep_key();
            seen.push(it.id);
        }
        seen.sort_unstable();
        let mut expected: Vec<u32> = (0..200).chain(10_000..10_150).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn flush_threshold_creates_delta_runs_and_compaction_folds_them() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(100, 0, 3), tiny_config())
            .unwrap();
        // Enough appends to cross the flush threshold several times; the
        // third flush triggers auto-compaction (compact_after_deltas = 3).
        ds.append(&mut env, &batch(400, 50_000, 4)).unwrap();
        let stats = ds.stats();
        assert!(stats.flushes >= 3, "{stats:?}");
        assert!(stats.compactions >= 1, "{stats:?}");
        assert!(ds.delta_runs().len() < 3);
        assert_eq!(ds.len(), 500);
        // The compacted tree indexes the merged base.
        assert!(ds.tree().num_items() > 100);
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingestion() {
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(120, 0, 5), tiny_config()).unwrap();
        ds.append(&mut env, &batch(30, 1_000_000, 6)).unwrap();
        let before = ds.snapshot();
        let gen_before = before.generation();
        let len_before = before.len();

        // Keep ingesting past flushes *and* a compaction.
        ds.append(&mut env, &batch(500, 2_000_000, 7)).unwrap();
        assert!(ds.generation() > gen_before);

        // The earlier snapshot still reads exactly its 150 records.
        let mut cursor = before.cursor();
        let mut n = 0u64;
        while cursor.next(&mut env).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, len_before);
        assert_eq!(n, 150);
    }

    #[test]
    fn to_stream_materialises_the_same_records_as_the_cursor() {
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(80, 0, 8), tiny_config()).unwrap();
        ds.append(&mut env, &batch(70, 5_000, 9)).unwrap();
        let snap = ds.snapshot();
        let stream = snap.to_stream(&mut env).unwrap();
        assert_eq!(stream.len(), snap.len());
        let items = stream.read_all(&mut env).unwrap();
        assert!(items.windows(2).all(|w| w[0].sweep_key() <= w[1].sweep_key()));
    }

    #[test]
    fn live_catalog_registers_appends_and_rejects_duplicates() {
        let mut env = env();
        let mut catalog = LiveCatalog::new();
        let id = catalog
            .register(&mut env, "feed", &batch(50, 0, 10), LiveConfig::default())
            .unwrap();
        assert!(matches!(
            catalog.register(&mut env, "feed", &[], LiveConfig::default()),
            Err(LiveError::DuplicateDataset(_))
        ));
        catalog.append(&mut env, "feed", &batch(20, 900, 11)).unwrap();
        assert!(matches!(
            catalog.append(&mut env, "nope", &[]),
            Err(LiveError::UnknownDataset(_))
        ));
        assert_eq!(catalog.get(id).unwrap().len(), 70);
        assert_eq!(catalog.lookup("feed").unwrap().1.stats().appended, 20);
    }

    #[test]
    fn snapshots_read_from_forked_worker_environments() {
        // The service execution model: workers fork over a device snapshot.
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(90, 0, 12), tiny_config()).unwrap();
        ds.append(&mut env, &batch(200, 40_000, 13)).unwrap();
        let snap = ds.snapshot();

        let base_pages = env.device.snapshot();
        let mut worker = env.fork_with_base(base_pages);
        let mut cursor = snap.cursor();
        let mut n = 0u64;
        while cursor.next(&mut worker).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, snap.len());
    }
}
