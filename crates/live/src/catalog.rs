//! LSM-style live dataset handles and their generation snapshots.
//!
//! A [`LiveDataset`] layers four tiers, youngest to oldest:
//!
//! 1. the gauged in-memory [`Memtable`] of not-yet-persisted inserts,
//! 2. zero or more **frozen flush batches** — sorted memtable contents
//!    awaiting their device write, still holding their gauge reservation,
//! 3. zero or more sorted **delta runs** on the device (each one persisted
//!    batch, sweep-key ordered),
//! 4. the immutable **base run** with its bulk-loaded R-tree — exactly the
//!    representation the static catalog persists.
//!
//! Maintenance — persisting a frozen batch as a delta run, and merge
//! compaction folding base + deltas into a new base with a rebuilt R-tree
//! — is exposed as **split phases** so it can run off the appending thread:
//!
//! * [`LiveDataset::freeze`] moves the memtable into the flush queue
//!   (no I/O, no environment — an append-path operation);
//! * [`LiveDataset::begin_flush`] / [`LiveDataset::run_flush`] /
//!   [`LiveDataset::publish_flush`] persist the oldest frozen batch — only
//!   `run_flush` touches the device, and it needs no `&self`, so a
//!   background worker can hold the storage environment without holding
//!   the dataset;
//! * [`LiveDataset::begin_compaction`] / [`LiveDataset::run_compaction`] /
//!   [`LiveDataset::publish_compaction`] do the same for the merge: the
//!   plan clones immutable run handles, the merge runs against them on the
//!   environment alone, and publication atomically swaps the new base in —
//!   keeping any delta runs that were flushed *while* the merge ran.
//!
//! The synchronous [`LiveDataset::append`] / [`LiveDataset::flush`] /
//! [`LiveDataset::compact`] entry points compose exactly these phases
//! inline, so inline and background maintenance execute identical code and
//! produce identical runs.
//!
//! Reads never lock ingestion out: [`LiveDataset::snapshot`] clones the
//! immutable run handles, the frozen batches, and a sorted copy of the
//! memtable. Device pages of persisted runs are never rewritten (compaction
//! allocates new ones), so a snapshot stays valid however far ingestion
//! advances — and it works unchanged on a forked worker environment layered
//! over a device snapshot, which is how the service executes streaming
//! joins.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use usj_geom::{Item, Rect};
use usj_io::{extsort, ItemStream, ItemStreamReader, ItemStreamWriter, PageId, SimEnv, PAGE_SIZE};
use usj_rtree::RTree;

use crate::manifest::{self, Manifest, RootPointer, RunRecord};
use crate::memtable::{frozen_sorted, Memtable};
use crate::{LiveError, Result};

/// Logical block size (in pages) of live base and delta runs.
///
/// Much smaller than [`usj_io::stream::DEFAULT_PAGES_PER_BLOCK`] on purpose: a
/// snapshot cursor's reader claims one block of records from the memory
/// gauge per refill, so the block size is the streaming-read granularity.
/// Batch-oriented runs want big blocks (fewer seeks); a live run is read
/// incrementally by symmetric joins that must coexist with the sweep
/// structures inside a worker's admission budget, so it trades a few extra
/// blocks for a small, steady per-cursor footprint.
pub const LIVE_PAGES_PER_BLOCK: u64 = 2;

/// Tuning knobs of a live dataset.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Memtable footprint (bytes) that triggers a flush to a delta run.
    pub flush_threshold_bytes: usize,
    /// Delta-run count that triggers automatic compaction (0 disables
    /// auto-compaction; [`LiveDataset::compact`] can still be called).
    pub compact_after_deltas: usize,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            flush_threshold_bytes: 256 * 1024,
            compact_after_deltas: 4,
        }
    }
}

/// One flushed memtable: a sweep-key-sorted run on the device.
#[derive(Debug, Clone)]
pub struct DeltaRun {
    run: ItemStream,
    bbox: Rect,
}

impl DeltaRun {
    /// Records in the run.
    pub fn len(&self) -> u64 {
        self.run.len()
    }

    /// Returns `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.run.is_empty()
    }

    /// Bounding box of the run.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }
}

/// A frozen memtable awaiting its device write: the items (already sorted
/// by sweep key) plus the gauge reservation they still hold. The
/// reservation transfers from the memtable via
/// [`MemoryReservation::take`](usj_io::MemoryReservation::take), so the
/// bytes keep charging the ingestion gauge until [`publish_flush`]
/// (which drops the batch) persists them — admission control never loses
/// sight of buffered-but-unpersisted data.
///
/// [`publish_flush`]: LiveDataset::publish_flush
#[derive(Debug)]
struct FlushBatch {
    items: Arc<Vec<Item>>,
    bbox: Rect,
    reservation: usj_io::MemoryReservation,
}

impl FlushBatch {
    fn bytes(&self) -> usize {
        self.reservation.bytes()
    }
}

/// A claimed flush: an immutable handle on the oldest frozen batch, enough
/// to write its delta run without touching the dataset. Produced by
/// [`LiveDataset::begin_flush`], consumed by [`LiveDataset::publish_flush`].
#[derive(Debug, Clone)]
pub struct FlushJob {
    items: Arc<Vec<Item>>,
    bbox: Rect,
}

impl FlushJob {
    /// Items the flush will persist (sorted by sweep key).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when the job carries no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A claimed compaction: immutable handles of the base and the delta runs
/// the merge will fold. Produced by [`LiveDataset::begin_compaction`] (which
/// marks the dataset as compacting so no second merge claims the same
/// runs), consumed by [`LiveDataset::publish_compaction`] /
/// [`LiveDataset::abort_compaction`].
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    base: ItemStream,
    deltas: Vec<ItemStream>,
}

impl CompactionPlan {
    /// Number of delta runs this plan folds into the new base.
    pub fn delta_count(&self) -> usize {
        self.deltas.len()
    }

    /// Total records the merge will process.
    pub fn len(&self) -> u64 {
        self.base.len() + self.deltas.iter().map(ItemStream::len).sum::<u64>()
    }

    /// Returns `true` when the plan covers no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The result of a finished merge, ready to publish: the new base run, its
/// rebuilt R-tree and bounding box, and how many delta runs it folded.
#[derive(Debug)]
pub struct CompactionOutput {
    base: ItemStream,
    tree: RTree,
    bbox: Rect,
    merged_items: u64,
    folded_deltas: usize,
}

/// Counters of one live dataset's ingestion history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LiveStats {
    /// Items appended since creation.
    pub appended: u64,
    /// Memtable flushes performed.
    pub flushes: u64,
    /// Compactions performed.
    pub compactions: u64,
    /// Items written to delta runs by flushes.
    pub flushed_items: u64,
    /// Items merged into new bases by compactions.
    pub compacted_items: u64,
}

/// Durable-mode bookkeeping of a live dataset: the fixed root-pointer
/// page, the write epoch, and memoized per-run checksums (each persisted
/// run's pages are immutable, so its checksums are computed by read-back
/// once and reused by every later manifest write).
#[derive(Debug)]
struct DurableState {
    root: PageId,
    epoch: u64,
    memo: HashMap<(PageId, u64), Vec<u64>>,
}

/// Key of the checksum memo: a persisted run is identified by its first
/// extent page and its length (pages are never rewritten, so the pair is
/// stable and unique per run).
fn run_key(stream: &ItemStream) -> (PageId, u64) {
    (stream.extents().first().copied().unwrap_or(u64::MAX), stream.len())
}

/// What [`LiveDataset::recover`] found and did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation recorded in the recovered manifest.
    pub generation: u64,
    /// Manifest-write epoch of the recovered root pointer.
    pub epoch: u64,
    /// Runs (base + deltas) that passed checksum verification and were
    /// kept.
    pub verified_runs: usize,
    /// Delta runs dropped because a checksum mismatch was found (the
    /// mismatching run and everything younger — publication order makes
    /// younger runs unreliable once an older one is damaged).
    pub dropped_deltas: usize,
}

/// An LSM-style live dataset: immutable base + delta runs + frozen flush
/// batches + memtable.
#[derive(Debug)]
pub struct LiveDataset {
    name: String,
    generation: u64,
    base: ItemStream,
    tree: RTree,
    bbox: Rect,
    deltas: Vec<DeltaRun>,
    flushing: VecDeque<FlushBatch>,
    memtable: Memtable,
    compacting: bool,
    config: LiveConfig,
    stats: LiveStats,
    /// Durable-mode state; `None` for the default in-memory-only dataset.
    durable: Option<DurableState>,
}

impl LiveDataset {
    /// Creates a live dataset from an initial batch of records: externally
    /// sorts them into the base run and bulk-loads its R-tree — the same
    /// preparation pipeline as a static catalog registration.
    pub fn create(
        env: &mut SimEnv,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<Self> {
        let stream = ItemStream::from_items_with_block(env, base_items, LIVE_PAGES_PER_BLOCK)?;
        let (base, sort_stats) =
            extsort::external_sort_by_key(env, &stream, Item::sweep_key, Item::cmp_by_lower_y)?;
        let bbox = if sort_stats.bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            sort_stats.bbox
        };
        let tree = RTree::bulk_load_stream(env, &base)?;
        Ok(LiveDataset {
            name: name.to_string(),
            generation: 0,
            base,
            tree,
            bbox,
            deltas: Vec::new(),
            flushing: VecDeque::new(),
            memtable: Memtable::new(env),
            compacting: false,
            config,
            stats: LiveStats::default(),
            durable: None,
        })
    }

    /// Creates a live dataset like [`create`](LiveDataset::create) and
    /// immediately makes it durable: allocates the root-pointer page and
    /// writes the first manifest. Returns the dataset and the root page a
    /// later [`recover`](LiveDataset::recover) starts from.
    pub fn create_durable(
        env: &mut SimEnv,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<(Self, PageId)> {
        let mut ds = Self::create(env, name, base_items, config)?;
        let root = ds.enable_durability(env)?;
        Ok((ds, root))
    }

    /// Makes an existing dataset durable: allocates the fixed root-pointer
    /// page and writes a manifest of the current published state. A no-op
    /// (returning the existing root) when already durable.
    pub fn enable_durability(&mut self, env: &mut SimEnv) -> Result<PageId> {
        if let Some(d) = &self.durable {
            return Ok(d.root);
        }
        let root = env.device.allocate(1);
        self.durable = Some(DurableState {
            root,
            epoch: 0,
            memo: HashMap::new(),
        });
        self.write_manifest(env)?;
        Ok(root)
    }

    /// Returns `true` when the dataset persists manifests.
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// The root-pointer page of a durable dataset.
    pub fn durable_root(&self) -> Option<PageId> {
        self.durable.as_ref().map(|d| d.root)
    }

    /// Manifest-write epoch of a durable dataset (0 before the first
    /// successful write).
    pub fn durable_epoch(&self) -> Option<u64> {
        self.durable.as_ref().map(|d| d.epoch)
    }

    /// Persists the current *published* state — base run + delta runs,
    /// with per-block checksums — as a new manifest body, then atomically
    /// swings the root pointer to it. The root write is the commit point:
    /// appends acknowledged before it are durable only once it completes.
    ///
    /// The memtable and frozen flush batches are deliberately *not*
    /// covered: they are the volatile tiers a crash loses (see the failure
    /// model in ARCHITECTURE.md).
    ///
    /// The body goes to freshly allocated pages, so a torn body write
    /// damages nothing (the root still points at the previous manifest)
    /// and the caller may simply retry.
    ///
    /// # Panics
    ///
    /// Panics when the dataset is not durable — call
    /// [`enable_durability`](LiveDataset::enable_durability) first.
    pub fn write_manifest(&mut self, env: &mut SimEnv) -> Result<()> {
        let phase = env.obs_phase("live.manifest");
        let durable = self
            .durable
            .as_mut()
            .expect("write_manifest requires enable_durability");
        // Checksums by read-back, memoized per run: persisted pages are
        // immutable, so each run pays its verify-after-write scan once.
        let mut records = Vec::with_capacity(1 + self.deltas.len());
        for (stream, bbox) in std::iter::once((&self.base, self.bbox))
            .chain(self.deltas.iter().map(|d| (&d.run, d.bbox)))
        {
            let key = run_key(stream);
            let checksums = match durable.memo.get(&key) {
                Some(c) => c.clone(),
                None => {
                    let fresh = manifest::run_checksums(env, stream)?;
                    durable.memo.insert(key, fresh.clone());
                    fresh
                }
            };
            records.push(RunRecord {
                stream: stream.clone(),
                bbox,
                checksums,
            });
        }
        // Drop memo entries for runs no longer referenced (old bases and
        // folded deltas) so the memo tracks the live run set.
        let live: std::collections::HashSet<(PageId, u64)> =
            records.iter().map(|r| run_key(&r.stream)).collect();
        durable.memo.retain(|k, _| live.contains(k));
        let mut records = records.into_iter();
        let body = Manifest {
            generation: self.generation,
            base: records.next().expect("base record always present"),
            deltas: records.collect(),
        }
        .encode();
        let pages = (body.len() as u64).div_ceil(PAGE_SIZE as u64).max(1);
        let first = env.device.allocate(pages);
        env.device.write_pages(first, pages, &body)?;
        let epoch = durable.epoch + 1;
        let root = RootPointer {
            epoch,
            first,
            pages,
            bytes: body.len() as u64,
        };
        env.device.write_page(durable.root, &root.encode())?;
        durable.epoch = epoch;
        env.obs_close(phase);
        Ok(())
    }

    /// Rebuilds the last *published* durable state from a device: reads
    /// the root pointer, follows it to the manifest, verifies every run's
    /// checksums, and reconstructs the dataset (empty memtable, no frozen
    /// batches — those tiers are volatile by contract).
    ///
    /// A damaged **base** is unrecoverable ([`LiveError::Corrupted`]).
    /// A damaged **delta** rolls back: that run and every younger delta
    /// are dropped, restoring the newest fully-intact prefix of the
    /// publication order. The report says what was kept and dropped.
    ///
    /// The old root page usually lives in the restart's *read-only* device
    /// snapshot, so the recovered dataset is re-homed: a fresh root page
    /// is allocated on `env` and the verified state is immediately
    /// re-manifested there (epoch bumped past the recovered one). Callers
    /// that will crash again must track the new root via
    /// [`durable_root`](LiveDataset::durable_root).
    pub fn recover(
        env: &mut SimEnv,
        name: &str,
        root: PageId,
        config: LiveConfig,
    ) -> Result<(Self, RecoveryReport)> {
        let phase = env.obs_phase("live.recover");
        let ptr = RootPointer::decode(&env.device.read_page(root)?)?;
        let raw = env.device.read_pages(ptr.first, ptr.pages)?;
        let body = raw
            .get(..ptr.bytes as usize)
            .ok_or_else(|| LiveError::Corrupted("manifest shorter than its root claims".into()))?;
        let m = Manifest::decode(body)?;
        if !manifest::verify_run(env, &m.base)? {
            return Err(LiveError::Corrupted(format!(
                "base run checksum mismatch (generation {})",
                m.generation
            )));
        }
        let mut memo = HashMap::new();
        memo.insert(run_key(&m.base.stream), m.base.checksums.clone());
        let mut deltas = Vec::with_capacity(m.deltas.len());
        let mut dropped = 0usize;
        for (i, d) in m.deltas.iter().enumerate() {
            if manifest::verify_run(env, d)? {
                memo.insert(run_key(&d.stream), d.checksums.clone());
                deltas.push(DeltaRun {
                    run: d.stream.clone(),
                    bbox: d.bbox,
                });
            } else {
                // Roll back this delta and everything younger: deltas
                // publish in order, so the intact prefix is the newest
                // consistent published state.
                dropped = m.deltas.len() - i;
                break;
            }
        }
        let verified_runs = 1 + deltas.len();
        let tree = RTree::bulk_load_stream(env, &m.base.stream)?;
        let new_root = env.device.allocate(1);
        let mut ds = LiveDataset {
            name: name.to_string(),
            generation: m.generation,
            base: m.base.stream,
            tree,
            bbox: m.base.bbox,
            deltas,
            flushing: VecDeque::new(),
            memtable: Memtable::new(env),
            compacting: false,
            config,
            stats: LiveStats::default(),
            durable: Some(DurableState {
                root: new_root,
                epoch: ptr.epoch,
                memo,
            }),
        };
        // Re-commit the verified state on the new root, so the next crash
        // recovers from *this* incarnation (and a rollback is made
        // permanent rather than rediscovered every restart).
        ds.write_manifest(env)?;
        env.obs_close(phase);
        Ok((
            ds,
            RecoveryReport {
                generation: m.generation,
                epoch: ptr.epoch,
                verified_runs,
                dropped_deltas: dropped,
            },
        ))
    }

    /// The registration name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Generation counter: bumped by every published flush and compaction.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total records visible to a snapshot taken now.
    pub fn len(&self) -> u64 {
        self.base.len()
            + self.deltas.iter().map(DeltaRun::len).sum::<u64>()
            + self.flushing.iter().map(|b| b.items.len() as u64).sum::<u64>()
            + self.memtable.len() as u64
    }

    /// Returns `true` when no record is visible.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bounding box of everything visible (base, deltas, frozen batches and
    /// memtable).
    pub fn bbox(&self) -> Rect {
        let mut bbox = self.bbox;
        for d in &self.deltas {
            bbox = bbox.union(&d.bbox);
        }
        for b in &self.flushing {
            if !b.bbox.is_empty() {
                bbox = bbox.union(&b.bbox);
            }
        }
        if !self.memtable.bbox().is_empty() {
            bbox = bbox.union(&self.memtable.bbox());
        }
        bbox
    }

    /// The base run's R-tree (rebuilt by compaction; deltas and memtable
    /// are *not* indexed — streaming consumers merge them by sweep key).
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Delta runs currently awaiting compaction.
    pub fn delta_runs(&self) -> &[DeltaRun] {
        &self.deltas
    }

    /// Reads back every record in the *published* tiers (base run plus
    /// delta runs) — exactly the set a
    /// [`write_manifest`](LiveDataset::write_manifest) covers and a crash
    /// preserves. The volatile tiers (memtable, frozen flush batches) are
    /// deliberately excluded; recovery oracles compare against this.
    pub fn published_items(&self, env: &mut SimEnv) -> Result<Vec<Item>> {
        let mut out = self.base.read_all(env)?;
        for d in &self.deltas {
            out.extend(d.run.read_all(env)?);
        }
        Ok(out)
    }

    /// Frozen flush batches awaiting their device write.
    pub fn pending_flush_batches(&self) -> usize {
        self.flushing.len()
    }

    /// Bytes held by frozen flush batches (still charged to the gauge).
    pub fn pending_flush_bytes(&self) -> usize {
        self.flushing.iter().map(FlushBatch::bytes).sum()
    }

    /// Items currently buffered in the memtable.
    pub fn memtable_len(&self) -> usize {
        self.memtable.len()
    }

    /// Returns `true` while a claimed compaction is in flight
    /// ([`begin_compaction`](LiveDataset::begin_compaction) has run but
    /// neither publish nor abort has).
    pub fn is_compacting(&self) -> bool {
        self.compacting
    }

    /// Ingestion counters.
    pub fn stats(&self) -> LiveStats {
        self.stats
    }

    /// The configured tuning knobs.
    pub fn config(&self) -> LiveConfig {
        self.config
    }

    /// Returns `true` when the memtable has reached the flush threshold.
    pub fn wants_freeze(&self) -> bool {
        !self.memtable.is_empty() && self.memtable.bytes() >= self.config.flush_threshold_bytes
    }

    /// Returns `true` when the delta-run count has reached the configured
    /// compaction threshold and no merge is already in flight.
    pub fn wants_compaction(&self) -> bool {
        self.config.compact_after_deltas > 0
            && self.deltas.len() >= self.config.compact_after_deltas
            && !self.compacting
    }

    /// Returns `true` while any maintenance is outstanding: a threshold-
    /// crossed memtable, frozen batches awaiting their write, a merge in
    /// flight, or a delta count at the compaction threshold. The background
    /// worker's quiesce loop drains until this is `false`.
    pub fn maintenance_pending(&self) -> bool {
        self.wants_freeze()
            || !self.flushing.is_empty()
            || self.compacting
            || self.wants_compaction()
    }

    /// Appends a batch of records.
    ///
    /// Inserts are buffered in the gauged memtable. In this synchronous
    /// entry point, crossing the flush threshold runs the whole maintenance
    /// pipeline inline ([`flush`](LiveDataset::flush)): freeze, persist,
    /// and compact if due — the pre-background behaviour. Callers that own
    /// a background worker use [`append_buffered`](LiveDataset::append_buffered)
    /// instead and let the worker drive the same phases.
    pub fn append(&mut self, env: &mut SimEnv, items: &[Item]) -> Result<()> {
        for &item in items {
            self.memtable.insert(item)?;
            self.stats.appended += 1;
            if self.wants_freeze() {
                self.flush(env)?;
            }
        }
        Ok(())
    }

    /// Appends records touching *only* the memtable (and, past the flush
    /// threshold, the freeze queue): no device I/O, no environment — the
    /// append path of background-maintenance mode. Returns `true` when the
    /// call left maintenance pending (the caller should nudge its worker).
    pub fn append_buffered(&mut self, items: &[Item]) -> Result<bool> {
        for &item in items {
            self.memtable.insert(item)?;
            self.stats.appended += 1;
            if self.wants_freeze() {
                self.freeze();
            }
        }
        Ok(self.maintenance_pending())
    }

    /// Freezes the memtable into the flush queue: its items (sorted), bbox
    /// and gauge reservation move into a `FlushBatch` awaiting the device
    /// write, and the memtable is left empty for new inserts. No I/O, no
    /// environment. Returns `false` (and does nothing) when the memtable is
    /// empty.
    pub fn freeze(&mut self) -> bool {
        if self.memtable.is_empty() {
            return false;
        }
        let (items, bbox, reservation) = self.memtable.freeze();
        self.flushing.push_back(FlushBatch {
            items: Arc::new(items),
            bbox,
            reservation,
        });
        true
    }

    /// Claims the oldest frozen batch for persisting: an immutable handle
    /// good for [`run_flush`](LiveDataset::run_flush) without `&self`.
    /// Returns `None` when no batch is frozen.
    pub fn begin_flush(&self) -> Option<FlushJob> {
        self.flushing.front().map(|b| FlushJob {
            items: Arc::clone(&b.items),
            bbox: b.bbox,
        })
    }

    /// Writes a claimed batch as a sorted delta run on `env`'s device
    /// (charged I/O). Needs no dataset access — this is the phase a
    /// background worker runs while appends and snapshots proceed.
    pub fn run_flush(env: &mut SimEnv, job: &FlushJob) -> Result<ItemStream> {
        let phase = env.obs_phase("live.flush");
        let mut writer = ItemStreamWriter::new(env, LIVE_PAGES_PER_BLOCK);
        for &item in job.items.iter() {
            writer.push(env, item)?;
        }
        let run = writer.finish(env)?;
        env.obs_close(phase);
        Ok(run)
    }

    /// Publishes a persisted flush: pops the frozen batch (releasing its
    /// gauge reservation), appends the delta run, and bumps the generation.
    ///
    /// Flushes publish in freeze order: the job must be the one claimed
    /// from the current queue front (there is one maintenance actor by
    /// construction — the inline caller or the single background worker).
    pub fn publish_flush(&mut self, job: FlushJob, run: ItemStream) {
        let batch = self
            .flushing
            .pop_front()
            .expect("publish_flush without a frozen batch");
        debug_assert!(
            Arc::ptr_eq(&batch.items, &job.items),
            "flushes must publish in freeze order"
        );
        self.stats.flushes += 1;
        self.stats.flushed_items += run.len();
        self.deltas.push(DeltaRun {
            run,
            bbox: job.bbox,
        });
        self.generation += 1;
    }

    /// Claims a merge compaction over the current base + delta runs.
    ///
    /// Marks the dataset as compacting (a second claim returns `None`
    /// until publish/abort) and hands back immutable run handles: the merge
    /// itself ([`run_compaction`](LiveDataset::run_compaction)) needs only
    /// an environment, so flushes may *append* new delta runs while it
    /// runs — publication keeps them. Returns `None` when there is nothing
    /// to fold.
    pub fn begin_compaction(&mut self) -> Option<CompactionPlan> {
        if self.compacting || self.deltas.is_empty() {
            return None;
        }
        self.compacting = true;
        Some(CompactionPlan {
            base: self.base.clone(),
            deltas: self.deltas.iter().map(|d| d.run.clone()).collect(),
        })
    }

    /// Merge compaction work: folds the plan's base + delta runs into a new
    /// base run and bulk-loads its R-tree.
    ///
    /// The runs are concatenated and pushed through the external sort on
    /// the packed sweep key; since every input run is already sorted, run
    /// formation emits large presorted runs and the sort degenerates into
    /// the k-way merge — all I/O charged like any other maintenance work.
    /// The old base pages stay valid on the device, which is what keeps
    /// earlier snapshots readable.
    pub fn run_compaction(env: &mut SimEnv, plan: &CompactionPlan) -> Result<CompactionOutput> {
        let phase = env.obs_phase("live.compaction");
        let mut concat = ItemStreamWriter::new(env, LIVE_PAGES_PER_BLOCK);
        let mut reader = plan.base.reader();
        while let Some(item) = reader.next(env)? {
            concat.push(env, item)?;
        }
        let mut merged_items = plan.base.len();
        for delta in &plan.deltas {
            let mut reader = delta.reader();
            while let Some(item) = reader.next(env)? {
                concat.push(env, item)?;
            }
            merged_items += delta.len();
        }
        let concatenated = concat.finish(env)?;
        let (base, sort_stats) = extsort::external_sort_by_key(
            env,
            &concatenated,
            Item::sweep_key,
            Item::cmp_by_lower_y,
        )?;
        let bbox = if sort_stats.bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            sort_stats.bbox
        };
        let tree = RTree::bulk_load_stream(env, &base)?;
        env.obs_close(phase);
        Ok(CompactionOutput {
            base,
            tree,
            bbox,
            merged_items,
            folded_deltas: plan.deltas.len(),
        })
    }

    /// Publishes a finished merge: swaps the new base/tree/bbox in, removes
    /// exactly the delta runs the plan folded (keeping any flushed since),
    /// clears the compacting mark, and bumps the generation.
    pub fn publish_compaction(&mut self, out: CompactionOutput) {
        debug_assert!(self.compacting, "publish_compaction without a claim");
        debug_assert!(out.folded_deltas <= self.deltas.len());
        self.base = out.base;
        self.tree = out.tree;
        self.bbox = out.bbox;
        self.deltas.drain(..out.folded_deltas);
        self.generation += 1;
        self.compacting = false;
        self.stats.compactions += 1;
        self.stats.compacted_items += out.merged_items;
    }

    /// Releases a compaction claim without publishing (the merge failed or
    /// was abandoned); the dataset is unchanged and a new claim may be
    /// taken.
    pub fn abort_compaction(&mut self) {
        self.compacting = false;
    }

    /// Synchronous maintenance: freezes the memtable, persists every frozen
    /// batch into delta runs, then compacts if the delta count reached the
    /// configured threshold — the freeze/flush/compact phases composed
    /// inline.
    pub fn flush(&mut self, env: &mut SimEnv) -> Result<()> {
        self.freeze();
        while let Some(job) = self.begin_flush() {
            let run = Self::run_flush(env, &job)?;
            self.publish_flush(job, run);
        }
        if self.wants_compaction() {
            self.compact(env)?;
        }
        Ok(())
    }

    /// Synchronous merge compaction: claim, merge and publish in one call
    /// (no-op when there is nothing to fold or a merge is in flight).
    pub fn compact(&mut self, env: &mut SimEnv) -> Result<()> {
        let Some(plan) = self.begin_compaction() else {
            return Ok(());
        };
        match Self::run_compaction(env, &plan) {
            Ok(out) => {
                self.publish_compaction(out);
                Ok(())
            }
            Err(e) => {
                self.abort_compaction();
                Err(e)
            }
        }
    }

    /// Fully quiesces the dataset inline: drains the memtable and every
    /// frozen batch to delta runs, then folds everything into the base
    /// (regardless of the compaction threshold). Afterwards the dataset is
    /// a single sorted base run + R-tree — the precondition for promotion
    /// into the frozen catalog.
    pub fn quiesce(&mut self, env: &mut SimEnv) -> Result<()> {
        self.freeze();
        while let Some(job) = self.begin_flush() {
            let run = Self::run_flush(env, &job)?;
            self.publish_flush(job, run);
        }
        self.compact(env)
    }

    /// Decomposes a quiesced dataset into its persisted parts (sorted base
    /// run, R-tree, bounding box) for promotion into the frozen catalog.
    ///
    /// Fails with [`LiveError::NotQuiesced`] when the memtable, the flush
    /// queue or the delta list is non-empty — call
    /// [`quiesce`](LiveDataset::quiesce) (or drain through a background
    /// worker) first.
    pub fn into_frozen_parts(self) -> Result<(ItemStream, RTree, Rect)> {
        if !self.memtable.is_empty() || !self.flushing.is_empty() || !self.deltas.is_empty() {
            return Err(LiveError::NotQuiesced(self.name));
        }
        Ok((self.base, self.tree, self.bbox))
    }

    /// Takes a consistent generation snapshot: immutable handles of the
    /// base and delta runs, the frozen flush batches, plus a sorted copy of
    /// the memtable.
    ///
    /// The snapshot stays valid while ingestion continues (persisted pages
    /// are never rewritten) and can be read from any environment whose
    /// device holds those pages — including a service worker's fork over a
    /// device snapshot.
    pub fn snapshot(&self) -> LiveSnapshot {
        let mut runs = Vec::with_capacity(1 + self.deltas.len());
        runs.push(SnapshotRun {
            stream: self.base.clone(),
            bbox: self.bbox,
        });
        for d in &self.deltas {
            runs.push(SnapshotRun {
                stream: d.run.clone(),
                bbox: d.bbox,
            });
        }
        let mut mem_runs: Vec<MemRun> = self
            .flushing
            .iter()
            .map(|b| MemRun {
                items: Arc::clone(&b.items),
                bbox: b.bbox,
            })
            .collect();
        if !self.memtable.is_empty() {
            mem_runs.push(MemRun {
                items: Arc::new(frozen_sorted(self.memtable.items())),
                bbox: self.memtable.bbox(),
            });
        }
        LiveSnapshot {
            generation: self.generation,
            runs,
            mem_runs,
            tree: self.tree.clone(),
            bbox: self.bbox(),
        }
    }
}

/// Identifier of a live dataset within one [`LiveCatalog`] (its
/// registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LiveId(pub u32);

/// A named registry of live datasets.
///
/// Slots are tombstoned rather than removed
/// ([`take`](LiveCatalog::take) leaves a `None` behind), so a [`LiveId`]
/// handed out earlier never silently re-points at a different dataset.
#[derive(Debug, Default)]
pub struct LiveCatalog {
    datasets: Vec<Option<LiveDataset>>,
    by_name: HashMap<String, u32>,
}

impl LiveCatalog {
    /// An empty registry.
    pub fn new() -> Self {
        LiveCatalog::default()
    }

    /// Number of registered live datasets.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// Returns `true` when no live dataset is registered.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }

    /// Iterates every registered live dataset (promotion leaves holes in
    /// the id space; those are skipped).
    pub fn iter(&self) -> impl Iterator<Item = (LiveId, &LiveDataset)> {
        self.datasets
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|ds| (LiveId(i as u32), ds)))
    }

    /// Registers a live dataset under `name` with an initial base batch.
    pub fn register(
        &mut self,
        env: &mut SimEnv,
        name: &str,
        base_items: &[Item],
        config: LiveConfig,
    ) -> Result<LiveId> {
        if self.by_name.contains_key(name) {
            return Err(LiveError::DuplicateDataset(name.to_string()));
        }
        let dataset = LiveDataset::create(env, name, base_items, config)?;
        self.insert(dataset)
    }

    /// Registers an already-built live dataset under its own name.
    ///
    /// This is the two-phase registration path of a service that keeps its
    /// storage environment behind a separate lock: the dataset is created
    /// on the storage environment first ([`LiveDataset::create`]), its
    /// pages are made visible to readers, and only then does the catalog
    /// entry appear.
    pub fn insert(&mut self, dataset: LiveDataset) -> Result<LiveId> {
        if self.by_name.contains_key(dataset.name()) {
            return Err(LiveError::DuplicateDataset(dataset.name().to_string()));
        }
        let id = LiveId(self.datasets.len() as u32);
        self.by_name.insert(dataset.name().to_string(), id.0);
        self.datasets.push(Some(dataset));
        Ok(id)
    }

    /// Looks a live dataset up by identifier.
    pub fn get(&self, id: LiveId) -> Option<&LiveDataset> {
        self.datasets.get(id.0 as usize)?.as_ref()
    }

    /// Mutable access by identifier.
    pub fn get_mut(&mut self, id: LiveId) -> Option<&mut LiveDataset> {
        self.datasets.get_mut(id.0 as usize)?.as_mut()
    }

    /// Looks a live dataset up by name.
    pub fn lookup(&self, name: &str) -> Option<(LiveId, &LiveDataset)> {
        let idx = *self.by_name.get(name)?;
        Some((LiveId(idx), self.datasets[idx as usize].as_ref()?))
    }

    /// Appends records to the live dataset registered under `name`.
    pub fn append(&mut self, env: &mut SimEnv, name: &str, items: &[Item]) -> Result<()> {
        let idx = *self
            .by_name
            .get(name)
            .ok_or_else(|| LiveError::UnknownDataset(name.to_string()))?;
        self.datasets[idx as usize]
            .as_mut()
            .ok_or_else(|| LiveError::UnknownDataset(name.to_string()))?
            .append(env, items)
    }

    /// Mutable access by name (flush/compact maintenance).
    pub fn get_mut_by_name(&mut self, name: &str) -> Option<&mut LiveDataset> {
        let idx = *self.by_name.get(name)?;
        self.datasets[idx as usize].as_mut()
    }

    /// Removes the live dataset registered under `name` and returns it
    /// (promotion into the frozen catalog). The slot is tombstoned: other
    /// datasets keep their [`LiveId`]s, and the name becomes free for
    /// re-registration.
    pub fn take(&mut self, name: &str) -> Option<(LiveId, LiveDataset)> {
        let idx = self.by_name.remove(name)?;
        let dataset = self.datasets[idx as usize].take()?;
        Some((LiveId(idx), dataset))
    }

    /// Iterates over the registered live datasets in registration order.
    pub fn datasets(&self) -> impl Iterator<Item = &LiveDataset> {
        self.datasets.iter().filter_map(Option::as_ref)
    }

    /// Iterates mutably over the registered live datasets (maintenance).
    pub fn datasets_mut(&mut self) -> impl Iterator<Item = &mut LiveDataset> {
        self.datasets.iter_mut().filter_map(Option::as_mut)
    }
}

/// One persisted run in a snapshot: its stream handle and bounding box
/// (the box prunes run scans in window/point selections).
#[derive(Debug, Clone)]
pub struct SnapshotRun {
    stream: ItemStream,
    bbox: Rect,
}

impl SnapshotRun {
    /// The persisted sorted run.
    pub fn stream(&self) -> &ItemStream {
        &self.stream
    }

    /// Bounding box of the run.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Records in the run.
    pub fn len(&self) -> u64 {
        self.stream.len()
    }

    /// Returns `true` when the run holds no records.
    pub fn is_empty(&self) -> bool {
        self.stream.is_empty()
    }
}

/// One in-memory run in a snapshot (a frozen flush batch or the memtable
/// copy): sweep-key-sorted items plus their bounding box.
#[derive(Debug, Clone)]
pub struct MemRun {
    items: Arc<Vec<Item>>,
    bbox: Rect,
}

impl MemRun {
    /// The sorted items.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Bounding box of the run.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }
}

/// A consistent, immutable view of one live dataset at one generation.
#[derive(Debug, Clone)]
pub struct LiveSnapshot {
    generation: u64,
    /// Sweep-key-sorted persisted runs, oldest (base) first.
    runs: Vec<SnapshotRun>,
    /// In-memory sorted runs: frozen flush batches (oldest first), then the
    /// frozen memtable copy.
    mem_runs: Vec<MemRun>,
    /// The base run's R-tree (indexes `runs[0]` only).
    tree: RTree,
    bbox: Rect,
}

impl LiveSnapshot {
    /// The generation this snapshot captured.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Total records in the snapshot.
    pub fn len(&self) -> u64 {
        self.runs.iter().map(SnapshotRun::len).sum::<u64>()
            + self.mem_runs.iter().map(|m| m.items.len() as u64).sum::<u64>()
    }

    /// Returns `true` when the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Persisted runs in the snapshot (base + deltas).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The persisted runs (base first), with their bounding boxes.
    pub fn runs(&self) -> &[SnapshotRun] {
        &self.runs
    }

    /// The in-memory runs (frozen batches oldest-first, memtable copy
    /// last).
    pub fn mem_runs(&self) -> &[MemRun] {
        &self.mem_runs
    }

    /// The base run's R-tree. It indexes *only* the base run
    /// (`runs()[0]`); delta and in-memory runs are routed through their
    /// bounding boxes by selection code.
    pub fn tree(&self) -> &RTree {
        &self.tree
    }

    /// Bounding box of the snapshot.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// A streaming merge cursor over every tier, delivering records in
    /// ascending sweep-key order *without* materialising or re-sorting
    /// anything — this is what lets a streaming join emit pairs while the
    /// scan is still running.
    pub fn cursor(&self) -> SnapshotCursor {
        SnapshotCursor {
            readers: self.runs.iter().map(|r| r.stream.reader()).collect(),
            mem: self
                .mem_runs
                .iter()
                .map(|m| MemCursor {
                    items: Arc::clone(&m.items),
                    pos: 0,
                })
                .collect(),
        }
    }

    /// Materialises the merged snapshot as one sorted stream on the device
    /// (charged I/O) — the "equivalent snapshot" an offline join runs on.
    pub fn to_stream(&self, env: &mut SimEnv) -> Result<ItemStream> {
        let mut writer = ItemStreamWriter::with_default_block(env);
        let mut cursor = self.cursor();
        while let Some(item) = cursor.next(env)? {
            writer.push(env, item)?;
        }
        Ok(writer.finish(env)?)
    }
}

/// Position in one in-memory sorted run.
#[derive(Debug)]
struct MemCursor {
    items: Arc<Vec<Item>>,
    pos: usize,
}

/// Streaming k-way merge over a snapshot's persisted and in-memory runs.
#[derive(Debug)]
pub struct SnapshotCursor {
    readers: Vec<ItemStreamReader>,
    mem: Vec<MemCursor>,
}

impl SnapshotCursor {
    /// The next record in ascending sweep-key order, or `None` when every
    /// tier is exhausted. Run pages are read (and charged) on demand.
    pub fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        // The run count is 1 + pending deltas + pending batches — small by
        // construction (maintenance folds them back) — so a linear scan
        // over the heads beats heap bookkeeping. Persisted runs win key
        // ties (oldest-first), in-memory runs only on strictly smaller.
        let mut best: Option<(usize, u64)> = None;
        for (i, reader) in self.readers.iter_mut().enumerate() {
            if let Some(head) = reader.peek(env)? {
                let key = head.sweep_key();
                if best.map_or(true, |(_, k)| key < k) {
                    best = Some((i, key));
                }
            }
        }
        let mut best_mem: Option<(usize, u64)> = None;
        for (i, m) in self.mem.iter().enumerate() {
            if let Some(item) = m.items.get(m.pos) {
                let key = item.sweep_key();
                if best_mem.map_or(true, |(_, k)| key < k) {
                    best_mem = Some((i, key));
                }
            }
        }
        if let Some((i, key)) = best_mem {
            if best.map_or(true, |(_, k)| key < k) {
                let m = &mut self.mem[i];
                let item = m.items[m.pos];
                m.pos += 1;
                return Ok(Some(item));
            }
        }
        match best {
            Some((i, _)) => Ok(self.readers[i].next(env)?),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn item(x: f32, y: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x, y, x + 2.0, y + 2.0), id)
    }

    fn batch(n: u32, id_base: u32, seed: u32) -> Vec<Item> {
        // Deterministic scattered rectangles, deliberately unsorted.
        (0..n)
            .map(|i| {
                let h = (i.wrapping_mul(2_654_435_761).wrapping_add(seed)) % 10_000;
                item((h % 97) as f32, (h % 89) as f32, id_base + i)
            })
            .collect()
    }

    fn tiny_config() -> LiveConfig {
        LiveConfig {
            flush_threshold_bytes: 64 * usj_geom::ITEM_BYTES,
            compact_after_deltas: 3,
        }
    }

    fn collect_ids(env: &mut SimEnv, snap: &LiveSnapshot) -> Vec<u32> {
        let mut cursor = snap.cursor();
        let mut seen = Vec::new();
        let mut last_key = 0u64;
        while let Some(it) = cursor.next(env).unwrap() {
            assert!(it.sweep_key() >= last_key, "cursor must be sorted");
            last_key = it.sweep_key();
            seen.push(it.id);
        }
        seen.sort_unstable();
        seen
    }

    #[test]
    fn snapshot_merges_all_tiers_in_sweep_key_order() {
        let mut env = env();
        let base = batch(200, 0, 1);
        let mut ds = LiveDataset::create(&mut env, "live", &base, tiny_config()).unwrap();
        ds.append(&mut env, &batch(150, 10_000, 2)).unwrap();
        assert_eq!(ds.len(), 350);

        let snap = ds.snapshot();
        assert_eq!(snap.len(), 350);
        let seen = collect_ids(&mut env, &snap);
        let mut expected: Vec<u32> = (0..200).chain(10_000..10_150).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn flush_threshold_creates_delta_runs_and_compaction_folds_them() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(100, 0, 3), tiny_config())
            .unwrap();
        // Enough appends to cross the flush threshold several times; the
        // third flush triggers auto-compaction (compact_after_deltas = 3).
        ds.append(&mut env, &batch(400, 50_000, 4)).unwrap();
        let stats = ds.stats();
        assert!(stats.flushes >= 3, "{stats:?}");
        assert!(stats.compactions >= 1, "{stats:?}");
        assert!(ds.delta_runs().len() < 3);
        assert_eq!(ds.len(), 500);
        // The compacted tree indexes the merged base.
        assert!(ds.tree().num_items() > 100);
    }

    #[test]
    fn snapshots_are_isolated_from_later_ingestion() {
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(120, 0, 5), tiny_config()).unwrap();
        ds.append(&mut env, &batch(30, 1_000_000, 6)).unwrap();
        let before = ds.snapshot();
        let gen_before = before.generation();
        let len_before = before.len();

        // Keep ingesting past flushes *and* a compaction.
        ds.append(&mut env, &batch(500, 2_000_000, 7)).unwrap();
        assert!(ds.generation() > gen_before);

        // The earlier snapshot still reads exactly its 150 records.
        let mut cursor = before.cursor();
        let mut n = 0u64;
        while cursor.next(&mut env).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, len_before);
        assert_eq!(n, 150);
    }

    #[test]
    fn to_stream_materialises_the_same_records_as_the_cursor() {
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(80, 0, 8), tiny_config()).unwrap();
        ds.append(&mut env, &batch(70, 5_000, 9)).unwrap();
        let snap = ds.snapshot();
        let stream = snap.to_stream(&mut env).unwrap();
        assert_eq!(stream.len(), snap.len());
        let items = stream.read_all(&mut env).unwrap();
        assert!(items.windows(2).all(|w| w[0].sweep_key() <= w[1].sweep_key()));
    }

    #[test]
    fn live_catalog_registers_appends_and_rejects_duplicates() {
        let mut env = env();
        let mut catalog = LiveCatalog::new();
        let id = catalog
            .register(&mut env, "feed", &batch(50, 0, 10), LiveConfig::default())
            .unwrap();
        assert!(matches!(
            catalog.register(&mut env, "feed", &[], LiveConfig::default()),
            Err(LiveError::DuplicateDataset(_))
        ));
        catalog.append(&mut env, "feed", &batch(20, 900, 11)).unwrap();
        assert!(matches!(
            catalog.append(&mut env, "nope", &[]),
            Err(LiveError::UnknownDataset(_))
        ));
        assert_eq!(catalog.get(id).unwrap().len(), 70);
        assert_eq!(catalog.lookup("feed").unwrap().1.stats().appended, 20);
    }

    #[test]
    fn snapshots_read_from_forked_worker_environments() {
        // The service execution model: workers fork over a device snapshot.
        let mut env = env();
        let mut ds =
            LiveDataset::create(&mut env, "live", &batch(90, 0, 12), tiny_config()).unwrap();
        ds.append(&mut env, &batch(200, 40_000, 13)).unwrap();
        let snap = ds.snapshot();

        let base_pages = env.device.snapshot();
        let mut worker = env.fork_with_base(base_pages);
        let mut cursor = snap.cursor();
        let mut n = 0u64;
        while cursor.next(&mut worker).unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, snap.len());
    }

    #[test]
    fn split_phase_flush_matches_inline_flush() {
        let mut env = env();
        // Same ingestion through the inline path and the split phases.
        let items = batch(140, 0, 20);
        let extra = batch(90, 10_000, 21);
        let mut inline = LiveDataset::create(&mut env, "a", &items, tiny_config()).unwrap();
        inline.append(&mut env, &extra).unwrap();
        inline.flush(&mut env).unwrap();

        let mut phased = LiveDataset::create(&mut env, "b", &items, tiny_config()).unwrap();
        phased.append_buffered(&extra).unwrap();
        phased.freeze();
        while let Some(job) = phased.begin_flush() {
            let run = LiveDataset::run_flush(&mut env, &job).unwrap();
            phased.publish_flush(job, run);
        }
        while phased.wants_compaction() {
            let plan = phased.begin_compaction().unwrap();
            let out = LiveDataset::run_compaction(&mut env, &plan).unwrap();
            phased.publish_compaction(out);
        }

        let a = collect_ids(&mut env, &inline.snapshot());
        let b = collect_ids(&mut env, &phased.snapshot());
        assert_eq!(a, b);
        assert_eq!(inline.len(), phased.len());
    }

    #[test]
    fn frozen_batches_keep_their_gauge_reservation_until_published() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &[], tiny_config()).unwrap();
        ds.append_buffered(&batch(200, 0, 30)).unwrap();
        assert!(ds.pending_flush_batches() > 0, "threshold crossings freeze");
        let held = ds.pending_flush_bytes();
        assert!(held > 0);
        assert!(env.memory.current() >= held, "frozen bytes stay charged");

        while let Some(job) = ds.begin_flush() {
            let run = LiveDataset::run_flush(&mut env, &job).unwrap();
            ds.publish_flush(job, run);
        }
        assert_eq!(ds.pending_flush_bytes(), 0);
        // Only the (small) residual memtable reservation remains.
        assert!(env.memory.current() < held);
    }

    #[test]
    fn appends_during_a_claimed_compaction_survive_publication() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(100, 0, 40), tiny_config())
            .unwrap();
        // Two delta runs, no compaction yet.
        ds.append_buffered(&batch(64, 10_000, 41)).unwrap();
        ds.append_buffered(&batch(64, 20_000, 42)).unwrap();
        ds.freeze();
        while let Some(job) = ds.begin_flush() {
            let run = LiveDataset::run_flush(&mut env, &job).unwrap();
            ds.publish_flush(job, run);
        }
        assert!(ds.delta_runs().len() >= 2);

        let plan = ds.begin_compaction().unwrap();
        assert!(ds.is_compacting());
        assert!(ds.begin_compaction().is_none(), "one claim at a time");

        // A flush lands *while* the merge is (conceptually) running.
        ds.append_buffered(&batch(64, 30_000, 43)).unwrap();
        ds.freeze();
        while let Some(job) = ds.begin_flush() {
            let run = LiveDataset::run_flush(&mut env, &job).unwrap();
            ds.publish_flush(job, run);
        }
        let pending_after_claim = ds.delta_runs().len() - plan.delta_count();
        assert!(pending_after_claim > 0, "the mid-merge flush must land");

        let out = LiveDataset::run_compaction(&mut env, &plan).unwrap();
        ds.publish_compaction(out);
        assert!(!ds.is_compacting());
        assert_eq!(
            ds.delta_runs().len(),
            pending_after_claim,
            "runs flushed during the merge survive publication"
        );
        assert_eq!(ds.len(), 100 + 64 + 64 + 64);

        // Every record is still visible exactly once.
        let seen = collect_ids(&mut env, &ds.snapshot());
        let mut expected: Vec<u32> = (0..100)
            .chain(10_000..10_064)
            .chain(20_000..20_064)
            .chain(30_000..30_064)
            .collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn snapshot_sees_frozen_batches_and_stays_isolated() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(50, 0, 50), tiny_config())
            .unwrap();
        ds.append_buffered(&batch(80, 5_000, 51)).unwrap();
        assert!(ds.pending_flush_batches() > 0);
        let snap = ds.snapshot();
        assert_eq!(snap.len(), 130);
        assert!(!snap.mem_runs().is_empty());

        // Publishing the flushes afterwards does not disturb the snapshot.
        while let Some(job) = ds.begin_flush() {
            let run = LiveDataset::run_flush(&mut env, &job).unwrap();
            ds.publish_flush(job, run);
        }
        let seen = collect_ids(&mut env, &snap);
        let mut expected: Vec<u32> = (0..50).chain(5_000..5_080).collect();
        expected.sort_unstable();
        assert_eq!(seen, expected);
    }

    #[test]
    fn quiesce_folds_everything_into_the_base() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(60, 0, 60), tiny_config())
            .unwrap();
        ds.append_buffered(&batch(150, 9_000, 61)).unwrap();
        ds.quiesce(&mut env).unwrap();
        assert_eq!(ds.memtable_len(), 0);
        assert_eq!(ds.pending_flush_batches(), 0);
        assert!(ds.delta_runs().is_empty());
        assert_eq!(ds.len(), 210);
        let (base, tree, bbox) = ds.into_frozen_parts().unwrap();
        assert_eq!(base.len(), 210);
        assert_eq!(tree.num_items(), 210);
        assert!(!bbox.is_empty());
    }

    #[test]
    fn into_frozen_parts_requires_quiescence() {
        let mut env = env();
        let mut ds = LiveDataset::create(&mut env, "live", &batch(40, 0, 70), tiny_config())
            .unwrap();
        ds.append_buffered(&batch(10, 1_000, 71)).unwrap();
        assert!(matches!(
            ds.into_frozen_parts(),
            Err(LiveError::NotQuiesced(_))
        ));
    }

    /// Crash simulation used by the durability tests: freeze the device
    /// and build a fresh environment layered over the snapshot — exactly
    /// what a process restart over persistent storage sees (all pages
    /// readable, in-memory state gone).
    fn crash(env: &SimEnv) -> SimEnv {
        env.fork_with_base(env.device.snapshot())
    }

    #[test]
    fn durable_dataset_recovers_its_published_generation() {
        let mut env = env();
        let (mut ds, root) =
            LiveDataset::create_durable(&mut env, "live", &batch(120, 0, 90), tiny_config())
                .unwrap();
        assert!(ds.is_durable());
        assert_eq!(ds.durable_root(), Some(root));
        // Ingest across flushes and a compaction, then drain the memtable
        // so the full record set is published before manifesting.
        ds.append(&mut env, &batch(300, 10_000, 91)).unwrap();
        ds.flush(&mut env).unwrap();
        ds.write_manifest(&mut env).unwrap();
        let published_ids = collect_ids(&mut env, &ds.snapshot());
        let generation = ds.generation();

        // Unmanifested work after the last manifest: volatile by contract.
        ds.append_buffered(&batch(40, 90_000, 92)).unwrap();

        let mut after = crash(&env);
        let (rec, report) =
            LiveDataset::recover(&mut after, "live", root, tiny_config()).unwrap();
        assert_eq!(report.generation, generation);
        assert_eq!(report.dropped_deltas, 0);
        assert_eq!(report.verified_runs, 1 + rec.delta_runs().len());
        assert_eq!(rec.generation(), generation);
        assert_eq!(rec.memtable_len(), 0, "memtable is volatile");
        assert_eq!(rec.pending_flush_batches(), 0);
        // The recovered pair-visible record set is exactly the manifested
        // one — the unmanifested appends are gone, nothing else is.
        assert_eq!(collect_ids(&mut after, &rec.snapshot()), published_ids);
        // The recovered dataset keeps working: append, flush, re-manifest.
        let mut rec = rec;
        rec.append(&mut after, &batch(25, 200_000, 93)).unwrap();
        rec.write_manifest(&mut after).unwrap();
        assert!(rec.durable_epoch().unwrap() > report.epoch);
    }

    #[test]
    fn recovery_rolls_back_a_corrupted_delta_and_everything_younger() {
        let mut env = env();
        let (mut ds, root) =
            LiveDataset::create_durable(&mut env, "live", &batch(80, 0, 94), tiny_config())
                .unwrap();
        // Several delta runs, no compaction in the way (freeze+publish
        // manually; how the memtable splits batches is irrelevant here).
        for (i, seed) in [(0u32, 95u32), (1, 96), (2, 97)] {
            ds.append_buffered(&batch(64, 10_000 + i * 1_000, seed)).unwrap();
            ds.freeze();
            while let Some(job) = ds.begin_flush() {
                let run = LiveDataset::run_flush(&mut env, &job).unwrap();
                ds.publish_flush(job, run);
            }
        }
        let delta_count = ds.delta_runs().len();
        assert!(delta_count >= 3);
        ds.write_manifest(&mut env).unwrap();

        // Records that must survive: the base plus the oldest delta only.
        let mut expected: Vec<u32> = (0..80).collect();
        expected.extend(ds.deltas[0].run.read_all(&mut env).unwrap().iter().map(|it| it.id));
        expected.sort_unstable();

        // Silently damage a page of the *second* delta run.
        let victim = ds.deltas[1].run.extents()[0];
        env.device.write_page(victim, b"rot").unwrap();

        let mut after = crash(&env);
        let (rec, report) =
            LiveDataset::recover(&mut after, "live", root, tiny_config()).unwrap();
        assert_eq!(
            report.dropped_deltas,
            delta_count - 1,
            "damaged delta and everything younger must go"
        );
        assert_eq!(rec.delta_runs().len(), 1, "intact prefix survives");
        assert_eq!(collect_ids(&mut after, &rec.snapshot()), expected);
    }

    #[test]
    fn recovery_fails_hard_on_a_corrupted_base() {
        let mut env = env();
        let (mut ds, root) =
            LiveDataset::create_durable(&mut env, "live", &batch(100, 0, 98), tiny_config())
                .unwrap();
        ds.write_manifest(&mut env).unwrap();
        let victim = ds.base.extents()[0];
        env.device.write_page(victim, b"rot").unwrap();
        let mut after = crash(&env);
        assert!(matches!(
            LiveDataset::recover(&mut after, "live", root, tiny_config()),
            Err(LiveError::Corrupted(_))
        ));
    }

    #[test]
    fn torn_manifest_body_write_leaves_the_previous_manifest_live() {
        use usj_io::{FaultConfig, FaultPlan, IoSimError};
        // No auto-compaction: every flush keeps its delta, so enough
        // appends give the manifest a multi-page body that *can* tear.
        let config = LiveConfig {
            flush_threshold_bytes: 64 * usj_geom::ITEM_BYTES,
            compact_after_deltas: 0,
        };
        let mut env = env();
        let (mut ds, root) =
            LiveDataset::create_durable(&mut env, "live", &batch(200, 0, 99), config).unwrap();
        let ids_v1 = collect_ids(&mut env, &ds.snapshot());

        ds.append(&mut env, &batch(7_500, 10_000, 100)).unwrap();
        ds.flush(&mut env).unwrap(); // drain the memtable: all 7 500 published
        assert!(
            ds.delta_runs().len() > 110,
            "need enough delta records for a multi-page manifest body"
        );
        env.install_faults(FaultPlan::new(FaultConfig {
            torn_write: 1.0,
            max_faults: 1,
            ..FaultConfig::quiet(7)
        }));
        let err = ds.write_manifest(&mut env);
        env.device.clear_faults();
        assert_eq!(
            err,
            Err(LiveError::Io(IoSimError::DeviceFault { transient: false })),
            "the multi-page body write must tear"
        );

        // Crash now: recovery lands on the previous manifest, intact.
        let mut after = crash(&env);
        let (rec, report) = LiveDataset::recover(&mut after, "live", root, config).unwrap();
        assert_eq!(report.epoch, 1, "first manifest is still the committed one");
        assert_eq!(collect_ids(&mut after, &rec.snapshot()), ids_v1);

        // And without a crash, simply retrying the write commits v2.
        ds.write_manifest(&mut env).unwrap();
        let mut after2 = crash(&env);
        let (rec2, report2) = LiveDataset::recover(&mut after2, "live", root, config).unwrap();
        assert_eq!(report2.epoch, 2);
        assert_eq!(
            collect_ids(&mut after2, &rec2.snapshot()),
            collect_ids(&mut env, &ds.snapshot())
        );
    }

    #[test]
    fn take_tombstones_the_slot_and_keeps_other_ids_stable() {
        let mut env = env();
        let mut catalog = LiveCatalog::new();
        let a = catalog
            .register(&mut env, "a", &batch(10, 0, 80), LiveConfig::default())
            .unwrap();
        let b = catalog
            .register(&mut env, "b", &batch(20, 100, 81), LiveConfig::default())
            .unwrap();
        let (taken_id, taken) = catalog.take("a").unwrap();
        assert_eq!(taken_id, a);
        assert_eq!(taken.len(), 10);
        assert!(catalog.get(a).is_none(), "slot is tombstoned");
        assert!(catalog.lookup("a").is_none());
        assert_eq!(catalog.get(b).unwrap().len(), 20);
        assert_eq!(catalog.len(), 1);
        // The name is free again; the new dataset gets a fresh id.
        let a2 = catalog
            .register(&mut env, "a", &batch(5, 900, 82), LiveConfig::default())
            .unwrap();
        assert_ne!(a2, a);
        assert_eq!(catalog.get(b).unwrap().len(), 20);
    }
}
