//! Property-based differential suite on the in-tree `usj_proptest` harness.
//!
//! The streaming operator's contract is *set equality*: over any ingestion
//! history (random base/append splits, flush points and compaction
//! cadences) and any memory limit (including ones that force the symmetric
//! driver to spill), [`StreamingJoin`] must report exactly the pair set the
//! offline SSSJ reports on the materialised snapshot. A separate property
//! drives the [`SymmetricSweepDriver`] directly so the *arrival
//! interleaving* — fixed to the min-lower-y pull policy inside
//! `StreamingJoin` — is itself randomised.

use usj_core::{CollectSink, JoinInput, JoinOperator, LimitSink, SssjJoin};
use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};
use usj_sweep::{Side, SymmetricSweepDriver};

use crate::catalog::{LiveConfig, LiveDataset};
use crate::streaming::StreamingJoin;

fn env() -> SimEnv {
    SimEnv::new(MachineConfig::machine3())
}

fn arb_items(g: &mut Gen, max_len: usize, id_base: u32) -> Vec<Item> {
    let mut next = 0u32;
    g.vec(0, max_len, |g| {
        let x = g.f32_in(-100.0, 100.0);
        let y = g.f32_in(-100.0, 100.0);
        let w = g.f32_in(0.0, 25.0);
        // Occasional tall rectangles keep residents alive across many
        // arrivals — the regime that exercises eviction and fix-up.
        let h = if g.bool_with(0.15) {
            g.f32_in(50.0, 200.0)
        } else {
            g.f32_in(0.0, 20.0)
        };
        let id = id_base + next;
        next += 1;
        Item::new(Rect::from_coords(x, y, x + w, y + h), id)
    })
}

fn arb_config(g: &mut Gen) -> LiveConfig {
    LiveConfig {
        // 4..96 buffered items per flush: every draw lands the flush points
        // somewhere else in the ingestion history.
        flush_threshold_bytes: g.usize_in(4, 96) * usj_geom::ITEM_BYTES,
        // 0 disables auto-compaction entirely, so snapshots with many delta
        // runs are drawn as often as freshly-compacted single-run ones.
        compact_after_deltas: g.usize_in(0, 4),
    }
}

/// Builds a live dataset through a randomised ingestion history: a random
/// base/append split, random append chunking, random flush/compaction
/// cadence, and sometimes an explicit flush or compaction at the end.
fn arb_dataset(g: &mut Gen, env: &mut SimEnv, name: &str, id_base: u32) -> LiveDataset {
    let items = arb_items(g, 140, id_base);
    let split = g.usize_in(0, items.len() + 1);
    let mut ds = LiveDataset::create(env, name, &items[..split], arb_config(g)).unwrap();
    let mut rest = &items[split..];
    while !rest.is_empty() {
        let chunk = g.usize_in(1, rest.len() + 1);
        ds.append(env, &rest[..chunk]).unwrap();
        rest = &rest[chunk..];
    }
    if g.bool_with(0.3) {
        ds.flush(env).unwrap();
    }
    if g.bool_with(0.2) {
        ds.compact(env).unwrap();
    }
    ds
}

fn sorted(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.sort_unstable();
    pairs
}

fn brute(left: &[Item], right: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for a in left {
        for b in right {
            if a.rect.intersects(&b.rect) {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Offline reference: SSSJ over the materialised snapshot streams.
fn offline_pairs(
    env: &mut SimEnv,
    l: &crate::LiveSnapshot,
    r: &crate::LiveSnapshot,
) -> Vec<(u32, u32)> {
    let sl = l.to_stream(env).unwrap();
    let sr = r.to_stream(env).unwrap();
    let (_, pairs) = SssjJoin::default()
        .run_collect(env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .unwrap();
    sorted(pairs)
}

#[test]
fn streaming_join_matches_offline_sssj_across_random_ingestion_histories() {
    forall!(48, |g| {
        let mut env = env();
        let l = arb_dataset(g, &mut env, "l", 0);
        let r = arb_dataset(g, &mut env, "r", 1_000_000);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());

        let mut sink = CollectSink::default();
        let live = StreamingJoin::default()
            .run(&mut env, &snap_l, &snap_r, &mut sink)
            .unwrap();

        let reference = offline_pairs(&mut env, &snap_l, &snap_r);
        let live_sorted = sorted(sink.pairs);
        assert!(live_sorted.windows(2).all(|w| w[0] != w[1]), "duplicate pair");
        assert_eq!(live_sorted, reference);
        assert_eq!(live.pairs as usize, reference.len());
    });
}

#[test]
fn streaming_join_matches_offline_under_random_memory_limits() {
    // The worker-fork execution model of the service: datasets are built in
    // an unconstrained environment, the join runs on a forked worker whose
    // gauge is limited — sometimes low enough to force the symmetric driver
    // to spill. The pair set must be identical either way, and the gauge
    // must be respected.
    forall!(24, |g| {
        let mut env = env();
        let l = arb_dataset(g, &mut env, "l", 0);
        let r = arb_dataset(g, &mut env, "r", 1_000_000);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());
        let reference = offline_pairs(&mut env, &snap_l, &snap_r);

        let limit = [96 * 1024, 192 * 1024, 4 * 1024 * 1024][g.usize_in(0, 3)];
        let base = env.device.snapshot();
        let mut worker = env.fork_with_base(base);
        worker.set_memory_limit(limit);

        let mut sink = CollectSink::default();
        let live = StreamingJoin::default()
            .run(&mut worker, &snap_l, &snap_r, &mut sink)
            .unwrap();
        assert_eq!(sorted(sink.pairs), reference);
        assert!(
            live.memory.peak_bytes <= limit,
            "gauge peak {} over limit {limit}",
            live.memory.peak_bytes
        );
    });
}

#[test]
fn symmetric_driver_matches_brute_force_on_arbitrary_interleavings() {
    // StreamingJoin always pulls the smaller lower-y head; the driver's
    // contract is stronger — *any* cross-side interleaving of the two
    // sorted streams yields the same pair set. Drive it directly with a
    // random interleaving under a spill-inducing budget.
    forall!(32, |g| {
        let left = arb_items(g, 100, 0);
        let right = arb_items(g, 100, 1_000_000);
        let mut l = left.clone();
        let mut r = right.clone();
        l.sort_unstable_by(Item::cmp_by_lower_y);
        r.sort_unstable_by(Item::cmp_by_lower_y);

        let mut env = env().with_memory_limit(64 * 1024);
        let bias = g.unit_f64(); // skews draws towards one side running ahead
        let mut driver = SymmetricSweepDriver::new(&env, -100.0, 130.0);
        let mut out = Vec::new();
        let (mut li, mut ri) = (0, 0);
        while li < l.len() || ri < r.len() {
            let take_left = match (l.get(li), r.get(ri)) {
                (Some(_), Some(_)) => g.bool_with(bias),
                (Some(_), None) => true,
                _ => false,
            };
            if take_left {
                driver
                    .push(&mut env, Side::Left, l[li], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                li += 1;
            } else {
                driver
                    .push(&mut env, Side::Right, r[ri], |a, b| out.push((a.id, b.id)))
                    .unwrap();
                ri += 1;
            }
        }
        driver
            .finish(&mut env, |a, b| out.push((a.id, b.id)))
            .unwrap();
        assert_eq!(sorted(out), brute(&left, &right));
        assert!(env.memory.peak() <= env.memory_limit);
    });
}

#[test]
fn recovery_restores_the_last_manifested_generation_at_any_crash_point() {
    // Durable-state contract: whatever a random ingestion history does —
    // appends with config-driven auto-flush/compaction, explicit flushes
    // and compactions, manifest commits at random points — a crash landing
    // wherever the history stops must recover *exactly* the record set of
    // the last committed manifest, and the recovered snapshot must join
    // (streaming and offline) identically to brute force over that set.
    use std::collections::BTreeSet;
    forall!(20, |g| {
        let mut env = env();
        let items = arb_items(g, 140, 0);
        let split = g.usize_in(0, items.len() + 1);
        let config = arb_config(g);
        let (mut ds, root) =
            LiveDataset::create_durable(&mut env, "d", &items[..split], config).unwrap();
        let mut durable: Vec<Item> = ds.published_items(&mut env).unwrap();
        let mut rest = &items[split..];
        while !rest.is_empty() {
            match g.usize_in(0, 7) {
                0..=3 => {
                    let chunk = g.usize_in(1, rest.len() + 1);
                    ds.append(&mut env, &rest[..chunk]).unwrap();
                    rest = &rest[chunk..];
                }
                4 => ds.flush(&mut env).unwrap(),
                5 => ds.compact(&mut env).unwrap(),
                _ => {
                    ds.write_manifest(&mut env).unwrap();
                    durable = ds.published_items(&mut env).unwrap();
                }
            }
        }
        if g.bool_with(0.5) {
            ds.flush(&mut env).unwrap();
        }
        if g.bool_with(0.5) {
            ds.write_manifest(&mut env).unwrap();
            durable = ds.published_items(&mut env).unwrap();
        }

        // Crash: every in-memory structure is gone; restart from the
        // device image (old pages readable, immutable).
        let mut after = env.fork_with_base(env.device.snapshot());
        let (rec, report) = LiveDataset::recover(&mut after, "d", root, config).unwrap();
        assert_eq!(report.dropped_deltas, 0, "clean crash must not drop verified deltas");

        let expect: BTreeSet<u32> = durable.iter().map(|i| i.id).collect();
        let got: BTreeSet<u32> =
            rec.published_items(&mut after).unwrap().iter().map(|i| i.id).collect();
        assert_eq!(got, expect, "recovery lost or fabricated manifested records");

        // Pair-set equality against an independent probe dataset.
        let probe_items = arb_items(g, 60, 1_000_000);
        let probe =
            LiveDataset::create(&mut after, "probe", &probe_items, LiveConfig::default()).unwrap();
        let (sl, sr) = (rec.snapshot(), probe.snapshot());
        let mut sink = CollectSink::default();
        StreamingJoin::default().run(&mut after, &sl, &sr, &mut sink).unwrap();
        let streamed = sorted(sink.pairs);
        assert_eq!(streamed, brute(&durable, &probe_items));
        assert_eq!(streamed, offline_pairs(&mut after, &sl, &sr));
    });
}

#[test]
fn mid_stream_cancellation_emits_an_exact_prefix_of_the_pair_set() {
    // A sink that breaks (LIMIT, cancellation) must stop the join with
    // exactly min(k, total) pairs emitted, every one of them a true result
    // pair, and no duplicates — the service's cancellation contract.
    forall!(24, |g| {
        let mut env = env();
        let l = arb_dataset(g, &mut env, "l", 0);
        let r = arb_dataset(g, &mut env, "r", 1_000_000);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());
        let reference = offline_pairs(&mut env, &snap_l, &snap_r);

        let k = g.usize_in(0, 20);
        let mut sink = LimitSink::new(CollectSink::default(), k as u64);
        StreamingJoin::default()
            .run(&mut env, &snap_l, &snap_r, &mut sink)
            .unwrap();
        let emitted = sorted(sink.into_inner().pairs);
        assert_eq!(emitted.len(), k.min(reference.len()));
        assert!(emitted.windows(2).all(|w| w[0] != w[1]), "duplicate pair");
        for p in &emitted {
            assert!(reference.binary_search(p).is_ok(), "{p:?} not a result pair");
        }
    });
}
