//! The streaming spatial join over two live snapshots.
//!
//! Offline SSSJ is *blocking*: nothing is reported until both inputs have
//! been fully externally sorted. [`StreamingJoin`] removes the block. Each
//! side of a [`LiveSnapshot`] is already a union of
//! sweep-key-sorted runs, so its [`SnapshotCursor`] delivers items in
//! global lower-y order *incrementally* — pages are read on demand as the
//! merge advances. The join feeds the two cursors into the
//! [`SymmetricSweepDriver`], which inserts
//! every arriving item into its side's resident interval structure and
//! probes the opposite side, emitting pairs **while the scan is running**:
//! the first pair surfaces after a handful of page reads instead of after
//! two full sort passes.
//!
//! The driver tolerates *any* cross-side interleaving (watermark-based
//! expiry), so the pull policy here — advance whichever head has the
//! smaller lower-y — is just the one that keeps the resident sets smallest.
//! Under memory pressure residents spill to the device and their missed
//! pairs are recovered by log-suffix fix-up joins; the reported pair *set*
//! is identical to offline SSSJ on the same snapshot (the property-based
//! differential suite proves this across interleavings, flush points and
//! memory limits).

use usj_core::{CatalogedInput, JoinResult, MemoryStats, PairSink, Predicate};
use usj_geom::{Item, Rect};
use usj_io::{CpuOp, ItemStream, ItemStreamReader, SimEnv};
use usj_sweep::{Side, SymmetricSweepDriver};

use crate::catalog::{LiveSnapshot, SnapshotCursor};
use crate::Result;

/// One input of a (possibly mixed) streaming join.
///
/// The symmetric driver only needs items in ascending lower-y order, and
/// both the live layer and the frozen catalog can deliver that
/// incrementally: a [`LiveSnapshot`]'s cursor k-way-merges its sorted runs,
/// and a cataloged dataset's persisted run is *already* y-sorted, so a
/// plain stream reader over it is a valid side. This is what lets one join
/// pair a live, still-ingesting dataset against a frozen registered one
/// without materialising either.
#[derive(Debug, Clone, Copy)]
pub enum JoinSide<'a> {
    /// A generation snapshot of a live dataset.
    Live(&'a LiveSnapshot),
    /// A y-sorted persisted run (a cataloged dataset's storage) with its
    /// bounding box.
    Run {
        /// The sweep-key-sorted stream.
        sorted: &'a ItemStream,
        /// Bounding box of the run (sizes the sweep strips).
        bbox: Rect,
    },
}

impl<'a> JoinSide<'a> {
    /// Bounding box of this side.
    pub fn bbox(&self) -> Rect {
        match self {
            JoinSide::Live(snap) => snap.bbox(),
            JoinSide::Run { bbox, .. } => *bbox,
        }
    }

    /// Total records this side will deliver.
    pub fn len(&self) -> u64 {
        match self {
            JoinSide::Live(snap) => snap.len(),
            JoinSide::Run { sorted, .. } => sorted.len(),
        }
    }

    /// Returns `true` when the side holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn cursor(&self) -> SideCursor {
        match self {
            JoinSide::Live(snap) => SideCursor::Snapshot(snap.cursor()),
            JoinSide::Run { sorted, .. } => SideCursor::Stream(sorted.reader()),
        }
    }
}

impl<'a> From<&'a CatalogedInput<'a>> for JoinSide<'a> {
    fn from(c: &'a CatalogedInput<'a>) -> Self {
        JoinSide::Run {
            sorted: c.sorted,
            bbox: c.bbox,
        }
    }
}

/// The incremental y-ordered item source behind one [`JoinSide`].
#[derive(Debug)]
enum SideCursor {
    Snapshot(SnapshotCursor),
    Stream(ItemStreamReader),
}

impl SideCursor {
    fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        match self {
            SideCursor::Snapshot(c) => c.next(env),
            SideCursor::Stream(r) => Ok(r.next(env)?),
        }
    }
}

/// Configuration of the streaming snapshot join.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingJoin {
    /// Optional bounding box of the data, used to size the striped sweep
    /// structures. When absent the union of the snapshot boxes is used.
    pub region_hint: Option<Rect>,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl StreamingJoin {
    /// Sets the region hint (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Runs the join over two snapshots, reporting pairs through `sink` as
    /// they are discovered.
    ///
    /// A `ControlFlow::Break` from the sink (LIMIT reached, cancellation)
    /// terminates the join early, skipping any outstanding fix-up I/O —
    /// exactly the early-termination contract of the offline operators.
    pub fn run(
        &self,
        env: &mut SimEnv,
        left: &LiveSnapshot,
        right: &LiveSnapshot,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        self.run_mixed(env, JoinSide::Live(left), JoinSide::Live(right), sink)
    }

    /// Runs the join over any pair of y-ordered sides — live snapshots,
    /// cataloged persisted runs, or one of each — reporting pairs through
    /// `sink` as they are discovered. The pair *set* equals offline SSSJ
    /// over the two materialised inputs (the mixed differential suite
    /// proves this).
    pub fn run_mixed(
        &self,
        env: &mut SimEnv,
        left: JoinSide<'_>,
        right: JoinSide<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let predicate = self.predicate;
        let eps = predicate.epsilon();
        // ε-expansion of the left input (distance joins): a uniform shift
        // of every left sort key, so the merged order below stays correct.
        let expand = |item: Item| {
            if eps > 0.0 {
                Item::new(item.rect.expanded(eps), item.id)
            } else {
                item
            }
        };
        let region = self
            .region_hint
            .unwrap_or_else(|| left.bbox().union(&right.bbox()))
            .expanded(eps);

        let probe_phase = env.obs_phase("stream.probe");
        let mut lcur = left.cursor();
        let mut rcur = right.cursor();
        // Prime both cursors *before* sizing the driver: the first pull
        // claims the readers' block buffers from the gauge, so the driver's
        // headroom-derived spill budget accounts for them.
        let mut lnext = lcur.next(env)?.map(expand);
        let mut rnext = rcur.next(env)?;
        let mut driver = SymmetricSweepDriver::new(env, region.lo.x, region.hi.x);
        let mut closed = [false; 2];
        let mut pairs = 0u64;
        let mut done = false;
        while !done {
            if lnext.is_none() && !closed[Side::Left as usize] {
                closed[Side::Left as usize] = true;
                driver.close_side(env, Side::Left, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                continue;
            }
            if rnext.is_none() && !closed[Side::Right as usize] {
                closed[Side::Right as usize] = true;
                driver.close_side(env, Side::Right, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                continue;
            }
            if lnext.is_none() && rnext.is_none() {
                break;
            }
            let take_left = match (&lnext, &rnext) {
                (Some(a), Some(b)) => {
                    env.charge(CpuOp::Compare, 1);
                    a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater
                }
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                let item = lnext.take().expect("checked above");
                driver.push(env, Side::Left, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                lnext = lcur.next(env)?.map(expand);
            } else {
                let item = rnext.take().expect("checked above");
                driver.push(env, Side::Right, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                rnext = rcur.next(env)?;
            }
        }
        env.obs_close(probe_phase);
        // Any spill epoch still open (late arrivals kept it alive) fixes up
        // here — unless the sink stopped the join, which skips that I/O.
        let fixup_phase = env.obs_phase("stream.fixup");
        let mut sweep = if done {
            driver.discard()
        } else {
            driver.finish(env, |a, b| {
                if done || !predicate.accepts(&a.rect, &b.rect) {
                    return;
                }
                if sink.emit(a.id, b.id).is_break() {
                    done = true;
                } else {
                    pairs += 1;
                }
            })?
        };
        env.obs_close(fixup_phase);
        sweep.pairs = pairs;
        env.charge(CpuOp::RectTest, sweep.rect_tests);
        env.charge(CpuOp::OutputPair, pairs);

        let (io, cpu) = env.since(&measurement);
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: 0,
            sweep,
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: sweep.max_structure_bytes,
                other_bytes: 0,
                peak_bytes: env.memory.peak(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{LiveConfig, LiveDataset};
    use usj_core::{CollectSink, JoinInput, JoinOperator, LimitSink, SssjJoin};
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn batch(n: u32, id_base: u32, seed: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let h = (i.wrapping_mul(2_654_435_761).wrapping_add(seed)) % 10_000;
                let x = (h % 97) as f32;
                let y = (h % 89) as f32;
                Item::new(Rect::from_coords(x, y, x + 3.0, y + 3.0), id_base + i)
            })
            .collect()
    }

    fn tiny_config() -> LiveConfig {
        LiveConfig {
            flush_threshold_bytes: 64 * usj_geom::ITEM_BYTES,
            compact_after_deltas: 3,
        }
    }

    /// Builds a live dataset mid-ingestion: base + delta runs + memtable.
    fn live_pair(env: &mut SimEnv) -> (LiveDataset, LiveDataset) {
        let mut l = LiveDataset::create(env, "l", &batch(300, 0, 1), tiny_config()).unwrap();
        l.append(env, &batch(250, 10_000, 2)).unwrap();
        let mut r = LiveDataset::create(env, "r", &batch(300, 500_000, 3), tiny_config()).unwrap();
        r.append(env, &batch(250, 600_000, 4)).unwrap();
        (l, r)
    }

    fn sorted(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn streaming_join_matches_offline_sssj_on_the_same_snapshot() {
        let mut env = env();
        let (l, r) = live_pair(&mut env);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());

        let mut live_sink = CollectSink::default();
        let live = StreamingJoin::default()
            .run(&mut env, &snap_l, &snap_r, &mut live_sink)
            .unwrap();

        let sl = snap_l.to_stream(&mut env).unwrap();
        let sr = snap_r.to_stream(&mut env).unwrap();
        let (offline, offline_pairs) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
            .unwrap();

        assert!(live.pairs > 0, "the workload must actually join");
        assert_eq!(live.pairs, offline.pairs);
        let live_sorted = sorted(live_sink.pairs);
        assert_eq!(live_sorted, sorted(offline_pairs));
        // Exactly-once: no duplicates in the streaming output.
        assert!(live_sorted.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn distance_predicate_matches_offline() {
        let mut env = env();
        let (l, r) = live_pair(&mut env);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());
        let predicate = Predicate::WithinDistance(1.5);

        let mut live_sink = CollectSink::default();
        StreamingJoin::default()
            .with_predicate(predicate)
            .run(&mut env, &snap_l, &snap_r, &mut live_sink)
            .unwrap();

        let sl = snap_l.to_stream(&mut env).unwrap();
        let sr = snap_r.to_stream(&mut env).unwrap();
        let (_, offline_pairs) = SssjJoin::default()
            .with_predicate(predicate)
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
            .unwrap();

        assert!(!offline_pairs.is_empty());
        assert_eq!(sorted(live_sink.pairs), sorted(offline_pairs));
    }

    #[test]
    fn limit_sink_terminates_the_join_early() {
        let mut env = env();
        let (l, r) = live_pair(&mut env);
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());
        let mut sink = LimitSink::new(CollectSink::default(), 7);
        let result = StreamingJoin::default()
            .run(&mut env, &snap_l, &snap_r, &mut sink)
            .unwrap();
        assert_eq!(result.pairs, 7);
        assert_eq!(sink.into_inner().pairs.len(), 7);
    }

    /// A y-sorted persisted run + bbox — the storage a cataloged dataset
    /// registers, built here without the service crate.
    fn sorted_run(env: &mut SimEnv, items: &[Item]) -> (ItemStream, Rect) {
        let stream = ItemStream::from_items_with_block(env, items, 2).unwrap();
        let (sorted, stats) = usj_io::extsort::external_sort_by_key(
            env,
            &stream,
            Item::sweep_key,
            Item::cmp_by_lower_y,
        )
        .unwrap();
        (sorted, stats.bbox)
    }

    #[test]
    fn mixed_live_cataloged_join_matches_offline_sssj() {
        let mut env = env();
        let (l, _) = live_pair(&mut env);
        let snap = l.snapshot();
        let (run, bbox) = sorted_run(&mut env, &batch(400, 800_000, 9));

        let mut mixed_sink = CollectSink::default();
        let mixed = StreamingJoin::default()
            .run_mixed(
                &mut env,
                JoinSide::Live(&snap),
                JoinSide::Run { sorted: &run, bbox },
                &mut mixed_sink,
            )
            .unwrap();

        let sl = snap.to_stream(&mut env).unwrap();
        let (offline, offline_pairs) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&run))
            .unwrap();

        assert!(mixed.pairs > 0, "the workload must actually join");
        assert_eq!(mixed.pairs, offline.pairs);
        let mixed_sorted = sorted(mixed_sink.pairs);
        assert_eq!(mixed_sorted, sorted(offline_pairs));
        assert!(mixed_sorted.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn mixed_join_sides_commute_as_pair_sets() {
        // Run × Live delivers the same pair set as Live × Run with the ids
        // swapped — no hidden left/right asymmetry in the adapter.
        let mut env = env();
        let (l, _) = live_pair(&mut env);
        let snap = l.snapshot();
        let (run, bbox) = sorted_run(&mut env, &batch(300, 700_000, 5));

        let mut ab = CollectSink::default();
        StreamingJoin::default()
            .run_mixed(
                &mut env,
                JoinSide::Live(&snap),
                JoinSide::Run { sorted: &run, bbox },
                &mut ab,
            )
            .unwrap();
        let mut ba = CollectSink::default();
        StreamingJoin::default()
            .run_mixed(
                &mut env,
                JoinSide::Run { sorted: &run, bbox },
                JoinSide::Live(&snap),
                &mut ba,
            )
            .unwrap();
        let flipped: Vec<(u32, u32)> = ba.pairs.into_iter().map(|(a, b)| (b, a)).collect();
        assert_eq!(sorted(ab.pairs), sorted(flipped));
    }

    #[test]
    fn mixed_join_respects_limit_sinks() {
        let mut env = env();
        let (l, _) = live_pair(&mut env);
        let snap = l.snapshot();
        let (run, bbox) = sorted_run(&mut env, &batch(400, 800_000, 9));
        let mut sink = LimitSink::new(CollectSink::default(), 5);
        let result = StreamingJoin::default()
            .run_mixed(
                &mut env,
                JoinSide::Live(&snap),
                JoinSide::Run { sorted: &run, bbox },
                &mut sink,
            )
            .unwrap();
        assert_eq!(result.pairs, 5);
        assert_eq!(sink.into_inner().pairs.len(), 5);
    }

    #[test]
    fn mixed_join_spills_under_a_4mb_budget_and_matches_offline() {
        // Tall rectangles never expire, so the resident sets grow to the
        // whole input. The worker runs at the 4 MB service-style limit with
        // a standing reservation emulating co-resident query working sets
        // (the admission-control situation that actually squeezes a join),
        // so the driver's headroom-derived budget forces spilling — and the
        // fix-up joins must still recover every pair, byte for byte.
        let mut env = env();
        let tall = |n: u32, id_base: u32, shift: f32| -> Vec<Item> {
            (0..n)
                .map(|i| {
                    let x = ((i % 250) as f32) * 4.0 + shift;
                    Item::new(Rect::from_coords(x, 0.0, x + 1.0, 1_000.0), id_base + i)
                })
                .collect()
        };
        let l = LiveDataset::create(&mut env, "l", &tall(4_000, 0, 0.0), tiny_config()).unwrap();
        let snap = l.snapshot();
        let (run, bbox) = sorted_run(&mut env, &tall(4_000, 1_000_000, 0.5));

        let base = env.device.snapshot();
        let mut worker = env.fork_with_base(base);
        worker.set_memory_limit(4 * 1024 * 1024);
        let _standing = worker.memory.try_reserve(3_800_000).unwrap();
        let mut mixed_sink = CollectSink::default();
        let mixed = StreamingJoin::default()
            .run_mixed(
                &mut worker,
                JoinSide::Live(&snap),
                JoinSide::Run { sorted: &run, bbox },
                &mut mixed_sink,
            )
            .unwrap();
        assert!(
            mixed.sweep.spill_runs > 0,
            "the squeezed 4 MB budget must force spilling: {:?}",
            mixed.sweep
        );
        assert!(mixed.memory.peak_bytes <= 4 * 1024 * 1024);

        let sl = snap.to_stream(&mut env).unwrap();
        let (_, offline_pairs) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&run))
            .unwrap();
        assert!(!offline_pairs.is_empty());
        assert_eq!(sorted(mixed_sink.pairs), sorted(offline_pairs));
    }

    #[test]
    fn spilling_under_a_small_memory_limit_matches_offline() {
        // Tall rectangles never expire, so the resident sets grow to the
        // whole input and blow through the governed budget: the driver must
        // spill and recover every pair via fix-up joins. The join runs on a
        // memory-limited worker fork over a device snapshot — the service
        // execution model — while dataset preparation stays unconstrained.
        let mut env = env();
        let tall = |n: u32, id_base: u32, shift: f32| -> Vec<Item> {
            (0..n)
                .map(|i| {
                    let x = ((i % 250) as f32) * 4.0 + shift;
                    Item::new(Rect::from_coords(x, 0.0, x + 1.0, 1_000.0), id_base + i)
                })
                .collect()
        };
        let l = LiveDataset::create(&mut env, "l", &tall(4_000, 0, 0.0), tiny_config()).unwrap();
        let r =
            LiveDataset::create(&mut env, "r", &tall(4_000, 100_000, 0.5), tiny_config()).unwrap();
        let (snap_l, snap_r) = (l.snapshot(), r.snapshot());

        let base = env.device.snapshot();
        let mut worker = env.fork_with_base(base);
        worker.set_memory_limit(128 * 1024);
        let mut live_sink = CollectSink::default();
        let live = StreamingJoin::default()
            .run(&mut worker, &snap_l, &snap_r, &mut live_sink)
            .unwrap();
        assert!(
            live.sweep.spill_runs > 0,
            "the budget must force spilling: {:?}",
            live.sweep
        );
        assert!(live.memory.peak_bytes <= 128 * 1024);

        let sl = snap_l.to_stream(&mut env).unwrap();
        let sr = snap_r.to_stream(&mut env).unwrap();
        let (_, offline_pairs) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
            .unwrap();
        assert!(!offline_pairs.is_empty());
        assert_eq!(sorted(live_sink.pairs), sorted(offline_pairs));
    }
}
