//! Persisted manifests and per-block run checksums: the durable half of
//! the live catalog.
//!
//! A durable [`LiveDataset`](crate::LiveDataset) keeps, on its own device,
//! a description of its last *published* persisted state — the base run
//! and every delta run, each with per-block FNV-1a checksums of its pages
//! — so that a restart from a device snapshot can rebuild exactly that
//! state and *prove* it did (a torn or corrupted run fails its checksum).
//!
//! Two on-device structures cooperate, both written by
//! [`LiveDataset::write_manifest`](crate::LiveDataset::write_manifest):
//!
//! * the **manifest body** ([`Manifest`]) — generation, run descriptors,
//!   bounding boxes and checksums, trailed by a whole-body FNV-1a — is
//!   written to *freshly allocated* pages every time. A crash may tear
//!   this multi-page write harmlessly: nothing points at the torn copy.
//! * the **root pointer** ([`RootPointer`]) — one fixed page holding the
//!   location of the current manifest body plus its own FNV-1a — is
//!   updated with a single-page write, which is atomic under the device's
//!   torn-write model (only multi-page writes tear). The root write is
//!   therefore the *commit point*: recovery reads the root, follows it to
//!   a manifest that is either entirely the old or entirely the new one,
//!   and verifies every checksum on the way up.
//!
//! Everything here is plain byte encoding and hashing; the recovery
//! policy (verify the base hard, roll torn deltas back) lives on
//! [`LiveDataset::recover`](crate::LiveDataset::recover).

use usj_geom::{Point, Rect};
use usj_io::stream::ITEMS_PER_PAGE;
use usj_io::{ItemStream, PageId, SimEnv, PAGE_SIZE};

use crate::{LiveError, Result};

/// Magic tag of the root pointer page.
const ROOT_MAGIC: u64 = 0x5553_4a52_4f4f_5431; // "USJROOT1"
/// Magic tag of a manifest body.
const MANIFEST_MAGIC: u64 = 0x5553_4a4d_414e_4931; // "USJMANI1"
/// Encoding version of both structures.
const VERSION: u64 = 1;

/// 64-bit FNV-1a over a byte slice — the checksum used for manifest
/// bodies, root pointers and run blocks.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Computes the per-block checksums of a persisted run by reading its
/// pages back from the device (charged I/O — this is deliberate
/// verify-after-write).
///
/// Block `i` hashes the page-resident bytes of extent `i`, zero padding
/// included, so a later re-read that produces different bytes — a torn
/// write's zero tail, silent corruption — fails the comparison.
pub fn run_checksums(env: &mut SimEnv, stream: &ItemStream) -> usj_io::Result<Vec<u64>> {
    let items_per_block = stream.pages_per_block() * ITEMS_PER_PAGE as u64;
    let mut remaining = stream.len();
    let mut checksums = Vec::with_capacity(stream.extents().len());
    let mut buf = Vec::new();
    for &first in stream.extents() {
        let in_block = remaining.min(items_per_block);
        let pages = in_block.div_ceil(ITEMS_PER_PAGE as u64);
        env.device.read_pages_into(first, pages, &mut buf)?;
        checksums.push(fnv1a(&buf));
        remaining -= in_block;
    }
    Ok(checksums)
}

/// One persisted run as recorded in a manifest: the stream descriptor,
/// its bounding box, and one checksum per extent block.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// The run's stream descriptor (page identifiers on this device).
    pub stream: ItemStream,
    /// Bounding box of the run's records.
    pub bbox: Rect,
    /// Per-block FNV-1a checksums, one per extent.
    pub checksums: Vec<u64>,
}

impl RunRecord {
    fn encode_into(&self, buf: &mut Vec<u8>) {
        let desc = self.stream.encode();
        buf.extend_from_slice(&(desc.len() as u64).to_le_bytes());
        buf.extend_from_slice(&desc);
        for c in [self.bbox.lo.x, self.bbox.lo.y, self.bbox.hi.x, self.bbox.hi.y] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        buf.extend_from_slice(&(self.checksums.len() as u64).to_le_bytes());
        for c in &self.checksums {
            buf.extend_from_slice(&c.to_le_bytes());
        }
    }

    fn decode_from(buf: &[u8], off: &mut usize) -> Result<RunRecord> {
        let desc_len = read_u64(buf, off)? as usize;
        let desc = buf
            .get(*off..*off + desc_len)
            .ok_or_else(|| LiveError::Corrupted("run record truncated".into()))?;
        let (stream, consumed) = ItemStream::decode(desc)
            .map_err(|e| LiveError::Corrupted(format!("run descriptor: {e}")))?;
        if consumed != desc_len {
            return Err(LiveError::Corrupted("run descriptor length mismatch".into()));
        }
        *off += desc_len;
        let mut coords = [0f32; 4];
        for c in coords.iter_mut() {
            let bytes = buf
                .get(*off..*off + 4)
                .ok_or_else(|| LiveError::Corrupted("run bbox truncated".into()))?;
            *c = f32::from_le_bytes(bytes.try_into().expect("checked length"));
            *off += 4;
        }
        // Constructed as a literal: the empty-rect sentinel (`lo > hi`)
        // must round-trip, which `Rect::new`'s ordering assert would reject.
        let bbox = Rect {
            lo: Point::new(coords[0], coords[1]),
            hi: Point::new(coords[2], coords[3]),
        };
        let count = read_u64(buf, off)? as usize;
        if count != stream.extents().len() {
            return Err(LiveError::Corrupted("checksum count mismatch".into()));
        }
        let mut checksums = Vec::with_capacity(count);
        for _ in 0..count {
            checksums.push(read_u64(buf, off)?);
        }
        Ok(RunRecord { stream, bbox, checksums })
    }
}

/// The manifest body: the complete published persisted state of one live
/// dataset at one generation.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Generation at the time of the write.
    pub generation: u64,
    /// The base run.
    pub base: RunRecord,
    /// Delta runs, oldest first.
    pub deltas: Vec<RunRecord>,
}

impl Manifest {
    /// Serializes the manifest, trailed by a whole-body FNV-1a.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MANIFEST_MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.generation.to_le_bytes());
        buf.extend_from_slice(&(self.deltas.len() as u64).to_le_bytes());
        self.base.encode_into(&mut buf);
        for d in &self.deltas {
            d.encode_into(&mut buf);
        }
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes and integrity-checks a manifest produced by
    /// [`encode`](Manifest::encode).
    pub fn decode(buf: &[u8]) -> Result<Manifest> {
        if buf.len() < 40 {
            return Err(LiveError::Corrupted("manifest truncated".into()));
        }
        let (body, trailer) = buf.split_at(buf.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("checked length"));
        if fnv1a(body) != stored {
            return Err(LiveError::Corrupted("manifest checksum mismatch".into()));
        }
        let mut off = 0usize;
        if read_u64(body, &mut off)? != MANIFEST_MAGIC {
            return Err(LiveError::Corrupted("manifest magic mismatch".into()));
        }
        if read_u64(body, &mut off)? != VERSION {
            return Err(LiveError::Corrupted("manifest version unsupported".into()));
        }
        let generation = read_u64(body, &mut off)?;
        let delta_count = read_u64(body, &mut off)? as usize;
        let base = RunRecord::decode_from(body, &mut off)?;
        let mut deltas = Vec::with_capacity(delta_count);
        for _ in 0..delta_count {
            deltas.push(RunRecord::decode_from(body, &mut off)?);
        }
        Ok(Manifest { generation, base, deltas })
    }
}

/// The root pointer: the single-page commit record locating the current
/// manifest body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RootPointer {
    /// Monotonic write counter (each manifest write bumps it).
    pub epoch: u64,
    /// First page of the manifest body.
    pub first: PageId,
    /// Pages the body occupies.
    pub pages: u64,
    /// Meaningful bytes of the body (the tail of the last page is padding).
    pub bytes: u64,
}

impl RootPointer {
    /// Serializes the pointer into one page-sized buffer (self-checksummed).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(PAGE_SIZE);
        buf.extend_from_slice(&ROOT_MAGIC.to_le_bytes());
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.first.to_le_bytes());
        buf.extend_from_slice(&self.pages.to_le_bytes());
        buf.extend_from_slice(&self.bytes.to_le_bytes());
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Decodes and integrity-checks a root pointer page.
    pub fn decode(page: &[u8]) -> Result<RootPointer> {
        if page.len() < 56 {
            return Err(LiveError::Corrupted("root pointer truncated".into()));
        }
        let stored = u64::from_le_bytes(page[48..56].try_into().expect("checked length"));
        if fnv1a(&page[..48]) != stored {
            return Err(LiveError::Corrupted("root pointer checksum mismatch".into()));
        }
        let mut off = 0usize;
        if read_u64(page, &mut off)? != ROOT_MAGIC {
            return Err(LiveError::Corrupted("root pointer magic mismatch".into()));
        }
        if read_u64(page, &mut off)? != VERSION {
            return Err(LiveError::Corrupted("root pointer version unsupported".into()));
        }
        Ok(RootPointer {
            epoch: read_u64(page, &mut off)?,
            first: read_u64(page, &mut off)?,
            pages: read_u64(page, &mut off)?,
            bytes: read_u64(page, &mut off)?,
        })
    }
}

fn read_u64(buf: &[u8], off: &mut usize) -> Result<u64> {
    let bytes = buf
        .get(*off..*off + 8)
        .ok_or_else(|| LiveError::Corrupted("record truncated".into()))?;
    *off += 8;
    Ok(u64::from_le_bytes(bytes.try_into().expect("checked length")))
}

/// Builds a run record for a stream already on `env`'s device, computing
/// its checksums by read-back.
pub fn record_run(env: &mut SimEnv, stream: &ItemStream, bbox: Rect) -> Result<RunRecord> {
    let checksums = run_checksums(env, stream)?;
    Ok(RunRecord {
        stream: stream.clone(),
        bbox,
        checksums,
    })
}

/// Verifies a recorded run against the device: recomputes every block
/// checksum and compares. `Ok(true)` means intact.
pub fn verify_run(env: &mut SimEnv, record: &RunRecord) -> Result<bool> {
    let fresh = run_checksums(env, &record.stream)?;
    Ok(fresh == record.checksums)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let f = i as f32;
                Item::new(Rect::from_coords(f, f, f + 1.0, f + 1.0), i)
            })
            .collect()
    }

    #[test]
    fn manifest_roundtrip_preserves_everything() {
        let mut env = env();
        let base = ItemStream::from_items_with_block(&mut env, &items(300), 2).unwrap();
        let delta = ItemStream::from_items_with_block(&mut env, &items(40), 2).unwrap();
        let m = Manifest {
            generation: 17,
            base: record_run(&mut env, &base, Rect::from_coords(0.0, 0.0, 9.0, 9.0)).unwrap(),
            deltas: vec![record_run(&mut env, &delta, Rect::empty()).unwrap()],
        };
        let blob = m.encode();
        let back = Manifest::decode(&blob).unwrap();
        assert_eq!(back.generation, 17);
        assert_eq!(back.base.stream.len(), 300);
        assert_eq!(back.base.checksums, m.base.checksums);
        assert_eq!(back.base.bbox, m.base.bbox);
        assert_eq!(back.deltas.len(), 1);
        assert!(back.deltas[0].bbox.is_empty(), "empty bbox must round-trip");
        assert!(verify_run(&mut env, &back.base).unwrap());
        assert!(verify_run(&mut env, &back.deltas[0]).unwrap());
    }

    #[test]
    fn manifest_rejects_bit_flips_anywhere() {
        let mut env = env();
        let base = ItemStream::from_items_with_block(&mut env, &items(50), 2).unwrap();
        let m = Manifest {
            generation: 1,
            base: record_run(&mut env, &base, Rect::from_coords(0.0, 0.0, 1.0, 1.0)).unwrap(),
            deltas: Vec::new(),
        };
        let blob = m.encode();
        for pos in [0, 8, blob.len() / 2, blob.len() - 1] {
            let mut bad = blob.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(Manifest::decode(&bad), Err(LiveError::Corrupted(_))),
                "flip at {pos} must be caught"
            );
        }
        assert!(Manifest::decode(&blob[..blob.len() - 1]).is_err());
    }

    #[test]
    fn root_pointer_roundtrip_and_corruption_detection() {
        let root = RootPointer { epoch: 3, first: 99, pages: 2, bytes: 12_345 };
        let page = root.encode();
        assert!(page.len() <= PAGE_SIZE, "root must fit one page");
        assert_eq!(RootPointer::decode(&page).unwrap(), root);
        let mut bad = page.clone();
        bad[20] ^= 1;
        assert!(matches!(RootPointer::decode(&bad), Err(LiveError::Corrupted(_))));
        // A zeroed page (never-written root) is rejected, not misparsed.
        assert!(RootPointer::decode(&vec![0u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn run_checksums_detect_a_torn_tail() {
        let mut env = env();
        // Two-page blocks: a multi-page run where a torn write zeroes the
        // tail of a block changes that block's checksum and only that one.
        let stream =
            ItemStream::from_items_with_block(&mut env, &items(ITEMS_PER_PAGE as u32 * 6), 2)
                .unwrap();
        let before = run_checksums(&mut env, &stream).unwrap();
        assert_eq!(before.len(), stream.extents().len());
        // Simulate silent damage: zero one page of the second block.
        let victim = stream.extents()[1];
        env.device.write_page(victim + 1, &[]).unwrap();
        let after = run_checksums(&mut env, &stream).unwrap();
        assert_ne!(before[1], after[1]);
        assert_eq!(before[0], after[0]);
        assert_eq!(before[2], after[2]);
    }
}
