//! The gauged in-memory write buffer of a live dataset.
//!
//! Inserts land here first; the buffer's bytes are registered with the
//! environment's [`MemoryGauge`](usj_io::MemoryGauge) through an RAII
//! reservation, so ingestion competes with queries for the same governed
//! budget. When the buffer reaches the flush threshold the owning
//! [`LiveDataset`](crate::LiveDataset) drains it into a sorted delta run on
//! the device.

use usj_geom::{Item, Rect, ITEM_BYTES};
use usj_io::{MemoryReservation, SimEnv};

use crate::Result;

/// An insert buffer whose footprint is charged to the memory gauge.
#[derive(Debug)]
pub struct Memtable {
    items: Vec<Item>,
    bbox: Rect,
    reservation: MemoryReservation,
}

impl Memtable {
    /// An empty memtable reserving against `env`'s gauge.
    pub fn new(env: &SimEnv) -> Self {
        Memtable {
            items: Vec::new(),
            bbox: Rect::empty(),
            reservation: env.memory.reserve_empty(),
        }
    }

    /// Buffered inserts.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Gauged footprint of the buffer (its reserved capacity, not just the
    /// occupied prefix — honest about what the allocator holds).
    pub fn bytes(&self) -> usize {
        self.items.capacity() * ITEM_BYTES
    }

    /// Bounding box of the buffered inserts (empty when nothing is
    /// buffered).
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// The buffered items, in arrival order.
    pub fn items(&self) -> &[Item] {
        &self.items
    }

    /// Buffers one insert, growing the gauge reservation with the vector.
    ///
    /// Fails with `MemoryLimitExceeded` when the gauge cannot cover the
    /// grown buffer — the caller should flush and retry, or surface the
    /// pressure to its admission layer.
    pub fn insert(&mut self, item: Item) -> Result<()> {
        self.items.push(item);
        self.bbox = if self.bbox.is_empty() {
            item.rect
        } else {
            self.bbox.union(&item.rect)
        };
        self.reservation.try_set(self.bytes())?;
        Ok(())
    }

    /// Drains the buffer, returning every item sorted by the packed sweep
    /// key (the order of every persisted run), and releases the gauge
    /// reservation.
    pub fn drain_sorted(&mut self) -> Vec<Item> {
        let mut items = std::mem::take(&mut self.items);
        items.sort_unstable_by_key(Item::sweep_key);
        self.bbox = Rect::empty();
        self.reservation.release();
        items
    }

    /// Freezes the buffer for an asynchronous flush: returns the items
    /// sorted by sweep key, their bounding box, and the gauge reservation
    /// they hold (transferred via
    /// [`MemoryReservation::take`](usj_io::MemoryReservation::take), so the
    /// bytes stay charged until the frozen batch is persisted and dropped).
    /// The memtable is left empty and immediately ready for new inserts.
    pub fn freeze(&mut self) -> (Vec<Item>, Rect, MemoryReservation) {
        let mut items = std::mem::take(&mut self.items);
        items.sort_unstable_by_key(Item::sweep_key);
        let bbox = std::mem::replace(&mut self.bbox, Rect::empty());
        (items, bbox, self.reservation.take())
    }
}

/// A sorted, frozen copy of the memtable for a snapshot, charged to the
/// *reader's* environment is unnecessary: the copy is part of the snapshot
/// value itself (a handful of in-flight inserts by construction — the
/// flush threshold bounds it).
pub(crate) fn frozen_sorted(items: &[Item]) -> Vec<Item> {
    let mut copy = items.to_vec();
    copy.sort_unstable_by_key(Item::sweep_key);
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn item(x: f32, y: f32, id: u32) -> Item {
        Item::new(Rect::from_coords(x, y, x + 1.0, y + 1.0), id)
    }

    #[test]
    fn inserts_register_with_the_gauge_and_drain_releases() {
        let env = SimEnv::new(MachineConfig::machine3());
        let mut mem = Memtable::new(&env);
        for i in 0..100 {
            mem.insert(item(i as f32, (100 - i) as f32, i)).unwrap();
        }
        assert_eq!(mem.len(), 100);
        assert!(mem.bytes() >= 100 * ITEM_BYTES);
        assert!(env.memory.current() >= 100 * ITEM_BYTES);
        assert!(mem.bbox().contains(&item(3.0, 97.0, 3).rect));

        let drained = mem.drain_sorted();
        assert_eq!(drained.len(), 100);
        assert!(drained.windows(2).all(|w| w[0].sweep_key() <= w[1].sweep_key()));
        assert!(mem.is_empty());
        assert_eq!(env.memory.current(), 0, "drain releases the reservation");
    }

    #[test]
    fn freeze_hands_the_reservation_over_and_resets_the_buffer() {
        let env = SimEnv::new(MachineConfig::machine3());
        let mut mem = Memtable::new(&env);
        for i in 0..50 {
            mem.insert(item(i as f32, (50 - i) as f32, i)).unwrap();
        }
        let charged = env.memory.current();
        assert!(charged >= 50 * ITEM_BYTES);

        let (items, bbox, reservation) = mem.freeze();
        assert_eq!(items.len(), 50);
        assert!(items.windows(2).all(|w| w[0].sweep_key() <= w[1].sweep_key()));
        assert!(!bbox.is_empty());
        assert!(mem.is_empty());
        assert!(mem.bbox().is_empty());
        // The bytes stay charged through the handed-over reservation...
        assert_eq!(env.memory.current(), charged);
        // ...and the emptied memtable accepts new inserts immediately.
        mem.insert(item(1.0, 1.0, 999)).unwrap();
        drop(reservation);
        assert!(env.memory.current() < charged);
    }

    #[test]
    fn insert_fails_when_the_gauge_is_exhausted() {
        let env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(1024);
        let mut mem = Memtable::new(&env);
        let mut failed = false;
        for i in 0..10_000 {
            if mem.insert(item(0.0, i as f32, i)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "a 1 KB gauge cannot hold 10k buffered inserts");
    }
}
