//! Live ingestion and streaming joins: the "millions of users *writing*"
//! half of the north star.
//!
//! Everything below this crate assumes a dataset is fully prepared (sorted
//! run + R-tree + histogram) before the first query touches it. This crate
//! adds the non-blocking path, two cooperating pieces:
//!
//! * [`LiveCatalog`] / [`LiveDataset`] — an LSM-style dataset handle: an
//!   immutable **base run** (the same persisted representation the static
//!   catalog builds) plus an in-memory gauged **memtable** of inserts that
//!   flushes to sorted **delta runs** on the device when its reservation
//!   hits a threshold, with **merge compaction** folding the deltas back
//!   into a new base + rebuilt R-tree. Reads go through generation
//!   [`LiveSnapshot`]s — immutable unions of sorted runs plus a frozen
//!   memtable copy — so queries keep a consistent view while ingestion
//!   continues.
//! * [`StreamingJoin`] — a pull-driven join over two snapshots built on the
//!   [`SymmetricSweepDriver`](usj_sweep::SymmetricSweepDriver): each
//!   arriving item is inserted into its side's resident set and probed
//!   against the opposite side, so pairs surface **as items arrive**
//!   instead of after a blocking full sort. Memory pressure spills
//!   residents to the device and recovers their pairs with log-suffix
//!   fix-up joins; the reported pair *set* is identical to offline SSSJ on
//!   the same snapshot.
//!
//! The service crate wires these into its catalog and admission control
//! (`register_live` / `append_live` / `QueryKind::StreamingJoin`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod catalog;
pub mod manifest;
pub mod memtable;
pub mod streaming;

pub use catalog::{
    CompactionOutput, CompactionPlan, DeltaRun, FlushJob, LiveCatalog, LiveConfig, LiveDataset,
    LiveId, LiveSnapshot, LiveStats, MemRun, RecoveryReport, SnapshotCursor, SnapshotRun,
};
pub use manifest::{Manifest, RootPointer, RunRecord};
pub use memtable::Memtable;
pub use streaming::{JoinSide, StreamingJoin};

// Property-based tests on the vendored `usj_proptest` harness; opt-in
// behind the `proptest` feature like the rest of the workspace.
#[cfg(all(test, feature = "proptest"))]
mod proptests;

use std::fmt;

use usj_io::IoSimError;

/// Errors produced by the live catalog.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveError {
    /// An error bubbled up from the simulated I/O substrate (including
    /// `MemoryLimitExceeded` when the memtable outgrows the gauge).
    Io(IoSimError),
    /// A live dataset name was registered twice.
    DuplicateDataset(String),
    /// An operation referred to a live dataset the catalog does not hold.
    UnknownDataset(String),
    /// Promotion was attempted on a dataset still holding unpersisted or
    /// uncompacted tiers (memtable, frozen batches or delta runs).
    NotQuiesced(String),
    /// Durable state failed an integrity check: a manifest or root pointer
    /// with a bad magic/checksum, or a base run whose per-block checksums
    /// no longer match its pages. Unrecoverable by design — the message
    /// says which check failed.
    Corrupted(String),
}

impl fmt::Display for LiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LiveError::Io(e) => write!(f, "i/o: {e}"),
            LiveError::DuplicateDataset(name) => {
                write!(f, "live dataset '{name}' is already registered")
            }
            LiveError::UnknownDataset(name) => write!(f, "unknown live dataset '{name}'"),
            LiveError::NotQuiesced(name) => {
                write!(f, "live dataset '{name}' is not quiesced (pending tiers remain)")
            }
            LiveError::Corrupted(what) => write!(f, "durable state corrupted: {what}"),
        }
    }
}

impl std::error::Error for LiveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LiveError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IoSimError> for LiveError {
    fn from(e: IoSimError) -> Self {
        LiveError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, LiveError>;
