//! Deterministic concurrency harness for live-dataset maintenance.
//!
//! Real thread interleavings cannot be replayed, so this harness explores
//! them *virtually*: a seeded scheduler drives the exact phase APIs the
//! service's background worker uses — `append_buffered` / `freeze` /
//! `begin_flush` → `run_flush` → `publish_flush` and `begin_compaction` →
//! `run_compaction` → `publish_compaction` / `abort_compaction` — as
//! individually schedulable steps on one thread, holding claimed work in
//! flight across arbitrary numbers of other steps (including queries and
//! steps on the other dataset). Every history is a pure function of its
//! 64-bit seed, so any failure replays exactly from the printed seed.
//!
//! Invariants asserted while a history unfolds:
//!
//! * **Differential pair sets** — at every query step, the streaming
//!   symmetric join over the two snapshots produces exactly the pair set
//!   of the offline SSSJ over the materialised snapshots, and exactly the
//!   brute-force pair set of the shadow models (plain `Vec<Item>` mirrors
//!   of everything appended).
//! * **Snapshot immutability** — snapshots taken mid-history are re-joined
//!   at the end, after every flush and compaction published, and must
//!   reproduce their original answer byte for byte.
//! * **Conservation** — no tier transition loses or duplicates records:
//!   every snapshot holds exactly the shadow model's items.

use std::collections::{BTreeSet, VecDeque};
use std::ops::ControlFlow;

use usj_core::{JoinInput, JoinOperator, PairSink, SssjJoin};
use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, PageId, SimEnv};
use usj_live::{CompactionPlan, FlushJob, LiveConfig, LiveDataset, LiveSnapshot, StreamingJoin};
use usj_proptest::Gen;

/// Steps per generated history.
const STEPS: usize = 160;

/// Mid-history snapshots retained for the immutability check (bounded so
/// a history cannot hoard unbounded memory).
const RETAINED_SNAPSHOTS: usize = 4;

struct Collect(Vec<(u32, u32)>);

impl PairSink for Collect {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        self.0.push((left, right));
        ControlFlow::Continue(())
    }
}

/// One live dataset under test plus its shadow model and any claimed
/// in-flight maintenance work.
struct Actor {
    ds: LiveDataset,
    shadow: Vec<Item>,
    /// A flush claimed via `begin_flush` whose publish is still pending.
    inflight_flush: Option<FlushJob>,
    /// A compaction claimed via `begin_compaction`, not yet resolved.
    inflight_compaction: Option<CompactionPlan>,
    next_id: u32,
}

impl Actor {
    fn new(env: &mut SimEnv, name: &str, g: &mut Gen, id_base: u32) -> Self {
        let base: Vec<Item> = (0..g.usize_in(8, 48)).map(|i| random_item(g, id_base + i as u32)).collect();
        let config = LiveConfig {
            // Small enough that histories cross it repeatedly.
            flush_threshold_bytes: 24 * usj_geom::ITEM_BYTES,
            // The scheduler drives compaction explicitly; disable the
            // threshold so claims happen exactly where the seed says.
            compact_after_deltas: 0,
        };
        let ds = LiveDataset::create(env, name, &base, config).expect("create dataset");
        Actor {
            ds,
            shadow: base,
            inflight_flush: None,
            inflight_compaction: None,
            next_id: id_base + 10_000,
        }
    }
}

fn random_item(g: &mut Gen, id: u32) -> Item {
    let x = g.f32_in(0.0, 90.0);
    let y = g.f32_in(0.0, 90.0);
    let w = g.f32_in(0.1, 8.0);
    let h = g.f32_in(0.1, 8.0);
    Item::new(Rect::from_coords(x, y, x + w, y + h), id)
}

fn brute_pairs(a: &[Item], b: &[Item]) -> BTreeSet<(u32, u32)> {
    let mut out = BTreeSet::new();
    for x in a {
        for y in b {
            if x.rect.intersects(&y.rect) {
                out.insert((x.id, y.id));
            }
        }
    }
    out
}

/// Streams the symmetric join over two snapshots and returns its pair set.
fn streaming_pairs(env: &mut SimEnv, l: &LiveSnapshot, r: &LiveSnapshot) -> BTreeSet<(u32, u32)> {
    let mut sink = Collect(Vec::new());
    StreamingJoin::default()
        .run(env, l, r, &mut sink)
        .expect("streaming join");
    sink.0.into_iter().collect()
}

/// Materialises both snapshots and runs the offline SSSJ, returning its
/// pair set — the paper-baseline oracle.
fn offline_pairs(env: &mut SimEnv, l: &LiveSnapshot, r: &LiveSnapshot) -> BTreeSet<(u32, u32)> {
    let sl = l.to_stream(env).expect("materialise left");
    let sr = r.to_stream(env).expect("materialise right");
    let (_, pairs) = SssjJoin::default()
        .run_collect(env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .expect("offline SSSJ");
    pairs.into_iter().collect()
}

/// Every item a snapshot holds, read back across all tiers.
fn snapshot_ids(env: &mut SimEnv, snap: &LiveSnapshot) -> BTreeSet<u32> {
    let mut cursor = snap.cursor();
    let mut out = BTreeSet::new();
    while let Some(item) = cursor.next(env).expect("snapshot cursor") {
        assert!(out.insert(item.id), "snapshot duplicated item {}", item.id);
    }
    out
}

/// Runs one seeded history and returns the number of query steps checked.
fn run_history(seed: u64) -> usize {
    let mut g = Gen::new(seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut left = Actor::new(&mut env, "left", &mut g, 0);
    let mut right = Actor::new(&mut env, "right", &mut g, 1_000_000);
    // (snapshot pair, expected pair set) retained for the end-of-history
    // immutability sweep.
    type Retained = (LiveSnapshot, LiveSnapshot, BTreeSet<(u32, u32)>);
    let mut retained: Vec<Retained> = Vec::new();
    let mut queries = 0usize;

    for _ in 0..STEPS {
        let actor = if g.bool_with(0.5) { &mut left } else { &mut right };
        match g.usize_in(0, 10) {
            // Append a small batch (memtable only; freezes past threshold).
            0..=2 => {
                let batch: Vec<Item> = (0..g.usize_in(1, 12))
                    .map(|_| {
                        let id = actor.next_id;
                        actor.next_id += 1;
                        random_item(&mut g, id)
                    })
                    .collect();
                actor.ds.append_buffered(&batch).expect("append");
                actor.shadow.extend_from_slice(&batch);
            }
            // Freeze whatever the memtable holds.
            3 => {
                actor.ds.freeze();
            }
            // Claim a flush (single actor: only if none is in flight).
            4 => {
                if actor.inflight_flush.is_none() {
                    actor.inflight_flush = actor.ds.begin_flush();
                }
            }
            // Finish the claimed flush: run its I/O, publish the delta run.
            5 => {
                if let Some(job) = actor.inflight_flush.take() {
                    let run = LiveDataset::run_flush(&mut env, &job).expect("run flush");
                    actor.ds.publish_flush(job, run);
                }
            }
            // Claim a merge compaction over the current base + deltas.
            6 => {
                if actor.inflight_compaction.is_none() {
                    actor.inflight_compaction = actor.ds.begin_compaction();
                }
            }
            // Finish the claimed compaction.
            7 => {
                if let Some(plan) = actor.inflight_compaction.take() {
                    let out = LiveDataset::run_compaction(&mut env, &plan).expect("run compaction");
                    actor.ds.publish_compaction(out);
                }
            }
            // Abandon the claimed compaction (the failure path).
            8 => {
                if actor.inflight_compaction.take().is_some() {
                    actor.ds.abort_compaction();
                }
            }
            // Query step: snapshot both sides, check every oracle.
            _ => {
                let (sl, sr) = (left.ds.snapshot(), right.ds.snapshot());
                // Conservation: each snapshot holds exactly the shadow set,
                // whatever tier each record currently sits in.
                let expect_l: BTreeSet<u32> = left.shadow.iter().map(|i| i.id).collect();
                let expect_r: BTreeSet<u32> = right.shadow.iter().map(|i| i.id).collect();
                assert_eq!(snapshot_ids(&mut env, &sl), expect_l, "left snapshot lost items");
                assert_eq!(snapshot_ids(&mut env, &sr), expect_r, "right snapshot lost items");

                let expected = brute_pairs(&left.shadow, &right.shadow);
                let streamed = streaming_pairs(&mut env, &sl, &sr);
                assert_eq!(streamed, expected, "streaming join diverged from shadow model");
                let offline = offline_pairs(&mut env, &sl, &sr);
                assert_eq!(streamed, offline, "streaming join diverged from offline SSSJ");
                queries += 1;

                if retained.len() < RETAINED_SNAPSHOTS {
                    retained.push((sl, sr, expected));
                }
            }
        }
    }

    // Drain every claim and all pending tiers, then re-check the retained
    // snapshots: generations published after a snapshot must never change
    // what it reads (the device is append-only; runs are immutable).
    for actor in [&mut left, &mut right] {
        if let Some(job) = actor.inflight_flush.take() {
            let run = LiveDataset::run_flush(&mut env, &job).expect("drain flush");
            actor.ds.publish_flush(job, run);
        }
        if let Some(plan) = actor.inflight_compaction.take() {
            let out = LiveDataset::run_compaction(&mut env, &plan).expect("drain compaction");
            actor.ds.publish_compaction(out);
        }
        actor.ds.quiesce(&mut env).expect("quiesce");
        assert_eq!(actor.ds.delta_runs().len(), 0);
        assert_eq!(actor.ds.pending_flush_batches(), 0);
        assert_eq!(actor.ds.memtable_len(), 0);
        assert_eq!(actor.ds.len(), actor.shadow.len() as u64);
    }
    let final_expected = brute_pairs(&left.shadow, &right.shadow);
    let (fl, fr) = (left.ds.snapshot(), right.ds.snapshot());
    assert_eq!(
        streaming_pairs(&mut env, &fl, &fr),
        final_expected,
        "post-quiesce join diverged"
    );
    for (i, (sl, sr, expected)) in retained.iter().enumerate() {
        assert_eq!(
            &streaming_pairs(&mut env, sl, sr),
            expected,
            "retained snapshot #{i} changed its answer after later maintenance"
        );
    }
    queries
}

/// Runs a history and reports how to replay it on failure.
fn check_seed(seed: u64) {
    println!("concurrency history seed {seed:#018x} (replay: USJ_SEED={seed})");
    let queries = run_history(seed);
    assert!(queries > 0, "seed {seed:#x}: history never hit a query step");
}

#[test]
fn seeded_history_0x5eed_0001() {
    check_seed(0x5eed_0001);
}

#[test]
fn seeded_history_0xdecaf_c0ffee() {
    check_seed(0xdecaf_c0ffee);
}

#[test]
fn seeded_history_0x0dds_and_ends() {
    check_seed(0x0dd5_a11d_e4d5);
}

/// Under a recording collector and a virtual clock, a seeded history is a
/// pure function of its seed all the way down to the *trace* it emits: two
/// replays must produce identical span trees (shape, nesting and order),
/// and the tree must contain the maintenance and operator-phase spans the
/// history exercised. The virtual clock never advances, so no host-timer
/// jitter can leak into the comparison.
#[test]
fn seeded_history_trace_shape_is_deterministic() {
    use std::sync::Arc;
    use usj_obs::{QueryTrace, Recorder, RingCollector, VirtualClock};

    let traced_run = |seed: u64| {
        let ring = Arc::new(RingCollector::new(1 << 20));
        let guard = usj_obs::install(
            Arc::clone(&ring) as Arc<dyn Recorder>,
            Arc::new(VirtualClock::new()),
        );
        let queries = run_history(seed);
        drop(guard);
        let (events, dropped) = ring.drain();
        assert_eq!(dropped, 0, "ring sized for a full history");
        (queries, QueryTrace::from_events(&events, dropped))
    };

    let seed = 0x5eed_0001;
    let (queries_a, trace_a) = traced_run(seed);
    let (queries_b, trace_b) = traced_run(seed);
    assert_eq!(queries_a, queries_b);
    assert_eq!(
        trace_a.shape(),
        trace_b.shape(),
        "same seed, same virtual clock — the span tree must replay exactly"
    );
    // The history crossed every instrumented path at least once.
    for span in ["live.flush", "live.compaction", "stream.probe", "sssj.sort"] {
        assert!(
            trace_a.find(span).is_some(),
            "seed {seed:#x} never recorded a `{span}` span"
        );
    }
}

/// CI passes a run-unique seed through `USJ_SEED` (and prints it with
/// `--nocapture`, so a red run's log carries its replay handle). Without
/// the variable this covers one more fixed seed.
#[test]
fn seeded_history_from_env() {
    let seed = std::env::var("USJ_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xfa11_bacc);
    check_seed(seed);
}

// ---------------------------------------------------------------------------
// Crash histories: durable datasets under process-crash simulation.
//
// Same seeded-scheduler idea as above, but both datasets are durable
// (checksummed manifests behind a root pointer) and the step alphabet
// gains `write_manifest` and CRASH. A crash drops *every* in-memory
// structure — memtables, frozen batches, claimed flushes/compactions,
// the dataset handles themselves — and restarts from a read-only device
// snapshot via `LiveDataset::recover`. The invariant proven at every
// crash point: recovery returns exactly the record set covered by the
// last committed manifest — nothing acknowledged-and-published is lost,
// nothing is fabricated — and the history then *continues* on the
// recovered datasets, so later joins and retained-snapshot sweeps keep
// holding across an arbitrary number of crashes.
// ---------------------------------------------------------------------------

/// Tuning shared by every durable actor: explicit freezes only (a huge
/// threshold keeps `append_buffered` from splitting batches at
/// gauge-dependent points, so the model knows exactly which ids each
/// flush publishes) and scheduler-driven compaction.
fn crash_config() -> LiveConfig {
    LiveConfig { flush_threshold_bytes: 1 << 30, compact_after_deltas: 0 }
}

/// A durable dataset under test plus a tier-accurate shadow model.
struct DurableActor {
    name: &'static str,
    ds: LiveDataset,
    /// Current root-pointer page (recovery re-homes it, so it moves).
    root: PageId,
    /// Every item currently alive (pruned to the durable set on crash).
    shadow: Vec<Item>,
    /// Ids sitting in the memtable (volatile).
    mem: Vec<u32>,
    /// Frozen flush batches awaiting their device write (volatile).
    frozen: VecDeque<Vec<u32>>,
    /// Ids persisted in published runs (base + deltas).
    published: BTreeSet<u32>,
    /// `published` as of the last committed manifest — what a crash at
    /// this instant must recover, no more and no less.
    durable: BTreeSet<u32>,
    inflight_flush: Option<FlushJob>,
    inflight_compaction: Option<CompactionPlan>,
    next_id: u32,
}

impl DurableActor {
    fn new(env: &mut SimEnv, name: &'static str, g: &mut Gen, id_base: u32) -> Self {
        let base: Vec<Item> =
            (0..g.usize_in(8, 48)).map(|i| random_item(g, id_base + i as u32)).collect();
        let (ds, root) = LiveDataset::create_durable(env, name, &base, crash_config())
            .expect("create durable dataset");
        let published: BTreeSet<u32> = base.iter().map(|i| i.id).collect();
        DurableActor {
            name,
            ds,
            root,
            shadow: base,
            mem: Vec::new(),
            frozen: VecDeque::new(),
            durable: published.clone(),
            published,
            inflight_flush: None,
            inflight_compaction: None,
            next_id: id_base + 10_000,
        }
    }

    /// The model's view of every live id, tier by tier. Must equal what
    /// a snapshot reads at all times.
    fn model_ids(&self) -> BTreeSet<u32> {
        let mut out = self.published.clone();
        out.extend(self.frozen.iter().flatten().copied());
        out.extend(self.mem.iter().copied());
        out
    }

    /// Finishes a claimed flush, cross-checking the written run against
    /// the model's oldest frozen batch before publishing it.
    fn finish_flush(&mut self, env: &mut SimEnv) {
        if let Some(job) = self.inflight_flush.take() {
            let run = LiveDataset::run_flush(env, &job).expect("run flush");
            let written: BTreeSet<u32> =
                run.read_all(env).expect("read flushed run").iter().map(|i| i.id).collect();
            let batch = self.frozen.pop_front().expect("model missed the claimed batch");
            assert_eq!(
                written,
                batch.iter().copied().collect::<BTreeSet<u32>>(),
                "flushed run diverged from the claimed batch"
            );
            self.ds.publish_flush(job, run);
            self.published.extend(batch);
        }
    }

    /// Commits a manifest: everything currently published becomes the
    /// set a crash must recover.
    fn commit_manifest(&mut self, env: &mut SimEnv) {
        self.ds.write_manifest(env).expect("write manifest");
        self.durable = self.published.clone();
    }
}

/// Simulates a process crash and restart for both actors at once (they
/// share the device, as two datasets of one service process would).
/// Every in-memory structure is dropped; a fresh environment is built on
/// the device snapshot (old pages readable but immutable); each actor
/// recovers from its root pointer and must see exactly its durable set.
fn crash_and_recover(env: &mut SimEnv, actors: [&mut DurableActor; 2]) {
    let mut revived = env.fork_with_base(env.device.snapshot());
    for actor in actors {
        let (ds, report) = LiveDataset::recover(&mut revived, actor.name, actor.root, crash_config())
            .expect("recover from crash");
        assert_eq!(report.dropped_deltas, 0, "clean crash must not drop verified deltas");
        let got = snapshot_ids(&mut revived, &ds.snapshot());
        assert_eq!(
            got, actor.durable,
            "recovery of '{}' lost or fabricated manifested records",
            actor.name
        );
        actor.ds = ds;
        actor.root = actor.ds.durable_root().expect("recovered dataset is durable");
        let durable = &actor.durable;
        actor.shadow.retain(|i| durable.contains(&i.id));
        actor.mem.clear();
        actor.frozen.clear();
        actor.published = actor.durable.clone();
        actor.inflight_flush = None;
        actor.inflight_compaction = None;
    }
    *env = revived;
}

/// Runs one seeded crash history; returns (query steps, crash steps).
fn run_crash_history(seed: u64) -> (usize, usize) {
    let mut g = Gen::new(seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut left = DurableActor::new(&mut env, "left", &mut g, 0);
    let mut right = DurableActor::new(&mut env, "right", &mut g, 1_000_000);
    type Retained = (LiveSnapshot, LiveSnapshot, BTreeSet<(u32, u32)>);
    let mut retained: Vec<Retained> = Vec::new();
    let (mut queries, mut crashes) = (0usize, 0usize);

    for _ in 0..STEPS {
        let pick_left = g.bool_with(0.5);
        let step = g.usize_in(0, 12);
        // Whole-process steps first (they need both actors).
        if step == 10 {
            crash_and_recover(&mut env, [&mut left, &mut right]);
            crashes += 1;
            continue;
        }
        if step >= 11 {
            // Query step: conservation + model self-consistency + every
            // pair-set oracle, exactly as in the volatile histories.
            let (sl, sr) = (left.ds.snapshot(), right.ds.snapshot());
            for (actor, snap) in [(&left, &sl), (&right, &sr)] {
                let expect: BTreeSet<u32> = actor.shadow.iter().map(|i| i.id).collect();
                assert_eq!(expect, actor.model_ids(), "shadow and tier model diverged");
                assert_eq!(
                    snapshot_ids(&mut env, snap),
                    expect,
                    "'{}' snapshot lost items",
                    actor.name
                );
            }
            let expected = brute_pairs(&left.shadow, &right.shadow);
            let streamed = streaming_pairs(&mut env, &sl, &sr);
            assert_eq!(streamed, expected, "streaming join diverged from shadow model");
            assert_eq!(
                streamed,
                offline_pairs(&mut env, &sl, &sr),
                "streaming join diverged from offline SSSJ"
            );
            queries += 1;
            if retained.len() < RETAINED_SNAPSHOTS {
                retained.push((sl, sr, expected));
            }
            continue;
        }

        let actor = if pick_left { &mut left } else { &mut right };
        match step {
            // Append a small batch (memtable only; threshold never trips).
            0..=2 => {
                let batch: Vec<Item> = (0..g.usize_in(1, 12))
                    .map(|_| {
                        let id = actor.next_id;
                        actor.next_id += 1;
                        random_item(&mut g, id)
                    })
                    .collect();
                actor.ds.append_buffered(&batch).expect("append");
                actor.mem.extend(batch.iter().map(|i| i.id));
                actor.shadow.extend_from_slice(&batch);
            }
            // Freeze the memtable into one flush batch.
            3 => {
                if actor.ds.freeze() {
                    actor.frozen.push_back(std::mem::take(&mut actor.mem));
                }
            }
            4 => {
                if actor.inflight_flush.is_none() {
                    actor.inflight_flush = actor.ds.begin_flush();
                }
            }
            5 => actor.finish_flush(&mut env),
            6 => {
                if actor.inflight_compaction.is_none() {
                    actor.inflight_compaction = actor.ds.begin_compaction();
                }
            }
            // Compaction rewrites published runs without changing the set.
            7 => {
                if let Some(plan) = actor.inflight_compaction.take() {
                    let out = LiveDataset::run_compaction(&mut env, &plan).expect("run compaction");
                    actor.ds.publish_compaction(out);
                }
            }
            8 => {
                if actor.inflight_compaction.take().is_some() {
                    actor.ds.abort_compaction();
                }
            }
            // Commit point: everything published becomes durable.
            _ => actor.commit_manifest(&mut env),
        }
    }

    // Drain: publish every tier, commit, then one last crash — after
    // which *every* acknowledged record must survive.
    for actor in [&mut left, &mut right] {
        actor.finish_flush(&mut env);
        if let Some(plan) = actor.inflight_compaction.take() {
            let out = LiveDataset::run_compaction(&mut env, &plan).expect("drain compaction");
            actor.ds.publish_compaction(out);
        }
        actor.ds.quiesce(&mut env).expect("quiesce");
        actor.mem.clear();
        actor.frozen.clear();
        actor.published = actor.shadow.iter().map(|i| i.id).collect();
        actor.commit_manifest(&mut env);
    }
    crash_and_recover(&mut env, [&mut left, &mut right]);
    crashes += 1;
    assert_eq!(left.shadow.len() as u64, left.ds.len(), "post-crash length mismatch");
    assert_eq!(right.shadow.len() as u64, right.ds.len(), "post-crash length mismatch");

    let final_expected = brute_pairs(&left.shadow, &right.shadow);
    let (fl, fr) = (left.ds.snapshot(), right.ds.snapshot());
    assert_eq!(
        streaming_pairs(&mut env, &fl, &fr),
        final_expected,
        "post-recovery join diverged"
    );
    // Old snapshots still answer identically: the crash snapshot keeps
    // every persisted page readable, and memtable copies live in the
    // snapshot itself.
    for (i, (sl, sr, expected)) in retained.iter().enumerate() {
        assert_eq!(
            &streaming_pairs(&mut env, sl, sr),
            expected,
            "retained snapshot #{i} changed its answer after crashes"
        );
    }
    (queries, crashes)
}

/// Runs a crash history and reports how to replay it on failure.
fn check_crash_seed(seed: u64) {
    println!("crash history seed {seed:#018x} (replay: USJ_SEED={seed})");
    let (queries, crashes) = run_crash_history(seed);
    assert!(queries > 0, "seed {seed:#x}: crash history never hit a query step");
    assert!(crashes > 1, "seed {seed:#x}: crash history never crashed mid-run");
}

#[test]
fn crash_history_0x5eed_0002() {
    check_crash_seed(0x5eed_0002);
}

#[test]
fn crash_history_0xbad_c0ffee() {
    check_crash_seed(0x0bad_c0ffee);
}

#[test]
fn crash_history_0xc4a5_4df0() {
    check_crash_seed(0xc4a5_4df0);
}

/// CI's run-unique seed covers a fresh crash history every run; the
/// printed line is the replay handle.
#[test]
fn crash_history_from_env() {
    let seed = std::env::var("USJ_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0xcafe_fa11);
    check_crash_seed(seed);
}
