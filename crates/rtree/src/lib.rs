//! Packed R-trees on the simulated external-memory substrate.
//!
//! The paper's indexed experiments all run on *packed* R-trees bulk-loaded
//! with the Hilbert heuristic of Kamel & Faloutsos: rectangles are sorted by
//! the Hilbert value of their centre and packed into leaves in that order,
//! following the advice of DeWitt et al. not to fill nodes completely (each
//! node is filled to 75 % and further rectangles are admitted only while they
//! do not grow the node's directory rectangle by more than 20 %). The
//! resulting trees have an average packing ratio of about 90 % and — because
//! bulk loading allocates the children of every node consecutively — a
//! largely sequential on-disk layout, which is exactly the property Section
//! 6.2 of the paper identifies as the reason the depth-first ST join performs
//! so much sequential I/O.
//!
//! * [`node`] — the 8 KiB on-page node format (maximum fanout 400).
//! * [`bulk`] — Hilbert bulk loading from in-memory slices or item streams.
//! * [`tree`] — the [`RTree`] handle: node access (optionally through an LRU
//!   buffer pool), window queries, and tree statistics. The handle itself
//!   serializes ([`RTree::encode_meta`]) so a catalog can persist trees on
//!   the device and reopen them without rebuilding.
//! * [`store`] — the [`NodeStore`]: a buffer-pool-backed node cache that the
//!   ST join and the service's window/point selection queries read through.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bulk;
pub mod node;
pub mod store;
pub mod tree;

pub use bulk::BulkLoadConfig;
pub use node::{Node, NodeEntry, NodeKind, MAX_FANOUT};
pub use store::NodeStore;
pub use tree::{RTree, RTreeStats};

// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
