//! The [`RTree`] handle: node access, window queries and statistics.

use usj_geom::{Item, Rect};
use usj_io::{CpuOp, LruBufferPool, PageId, Result, SimEnv, PAGE_SIZE};

use crate::node::{Node, NodeKind};

/// A bulk-loaded, read-only R-tree stored on the simulated device.
///
/// The tree is immutable after bulk loading, matching the paper's setup
/// (packed trees built once per data set; Section 6.3 discusses separately
/// what repeated updates would do to the layout).
#[derive(Debug, Clone)]
pub struct RTree {
    root: PageId,
    height: u32,
    num_items: u64,
    /// Number of nodes on each level, leaves first.
    level_counts: Vec<u64>,
    bbox: Rect,
}

/// Summary statistics of a tree, used by Table 2 and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeStats {
    /// Total number of nodes (the "lower bound" page count of Table 4).
    pub nodes: u64,
    /// Number of leaf nodes.
    pub leaves: u64,
    /// Number of internal nodes.
    pub internal: u64,
    /// Height of the tree (1 for a single leaf).
    pub height: u32,
    /// Number of data items indexed.
    pub items: u64,
    /// Size of the index on disk in bytes.
    pub size_bytes: u64,
    /// Average leaf fill relative to the maximum fanout.
    pub avg_leaf_fill: f64,
}

impl RTree {
    /// Internal constructor used by the bulk loader.
    pub(crate) fn from_build(
        root: PageId,
        height: u32,
        num_items: u64,
        level_counts: Vec<u64>,
        bbox: Rect,
    ) -> Self {
        RTree {
            root,
            height,
            num_items,
            level_counts,
            bbox,
        }
    }

    /// Bulk loads a tree from an in-memory slice with the default
    /// configuration (convenience wrapper around [`crate::bulk::bulk_load`]).
    pub fn bulk_load(env: &mut SimEnv, items: &[Item]) -> Result<RTree> {
        crate::bulk::bulk_load(env, items, crate::bulk::BulkLoadConfig::default())
    }

    /// Bulk loads a tree from an item stream with the default configuration.
    pub fn bulk_load_stream(env: &mut SimEnv, input: &usj_io::ItemStream) -> Result<RTree> {
        crate::bulk::bulk_load_stream(env, input, crate::bulk::BulkLoadConfig::default())
    }

    /// Page number of the root node.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Height of the tree (a single-leaf tree has height 1).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed items.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> u64 {
        self.level_counts.first().copied().unwrap_or(0)
    }

    /// Number of internal nodes.
    pub fn num_internal(&self) -> u64 {
        self.level_counts.iter().skip(1).sum()
    }

    /// Total number of nodes; this is the paper's "lower bound" on page
    /// requests for a dense join involving the whole tree.
    pub fn nodes(&self) -> u64 {
        self.level_counts.iter().sum()
    }

    /// Nodes per level, leaves first.
    pub fn level_counts(&self) -> &[u64] {
        &self.level_counts
    }

    /// Size of the index on disk, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.nodes() * PAGE_SIZE as u64
    }

    /// Bounding box of the indexed data.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Summary statistics.
    pub fn stats(&self) -> RTreeStats {
        let leaves = self.num_leaves();
        RTreeStats {
            nodes: self.nodes(),
            leaves,
            internal: self.num_internal(),
            height: self.height,
            items: self.num_items,
            size_bytes: self.size_bytes(),
            avg_leaf_fill: if leaves == 0 {
                0.0
            } else {
                self.num_items as f64 / (leaves as f64 * crate::node::MAX_FANOUT as f64)
            },
        }
    }

    /// Reads and decodes a node directly from the device (one page request).
    pub fn read_node(&self, env: &mut SimEnv, page: PageId) -> Result<Node> {
        let bytes = env.device.read_page(page)?;
        let node = Node::decode(&bytes)?;
        env.charge(CpuOp::ItemMove, node.len() as u64);
        Ok(node)
    }

    /// Reads a node through an LRU buffer pool (hits avoid the page request).
    pub fn read_node_pooled(
        &self,
        env: &mut SimEnv,
        pool: &mut LruBufferPool,
        page: PageId,
    ) -> Result<Node> {
        let bytes = pool.get(&mut env.device, page)?;
        let node = Node::decode(&bytes)?;
        env.charge(CpuOp::ItemMove, node.len() as u64);
        Ok(node)
    }

    /// Window query: returns every indexed item whose MBR intersects `window`.
    ///
    /// Performs a depth-first traversal reading only nodes whose directory
    /// rectangle intersects the window.
    pub fn window_query(&self, env: &mut SimEnv, window: &Rect) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(env, page)?;
            for e in &node.entries {
                env.charge(CpuOp::RectTest, 1);
                if !e.rect.intersects(window) {
                    continue;
                }
                match node.kind {
                    NodeKind::Leaf => out.push(e.as_item()),
                    NodeKind::Internal => stack.push(e.child_page()),
                }
            }
        }
        Ok(out)
    }

    /// Counts the leaf pages whose directory rectangle intersects `window`
    /// without descending into them (used by the cost-based join selector to
    /// estimate what fraction of the index a join would touch).
    pub fn leaves_intersecting(&self, env: &mut SimEnv, window: &Rect) -> Result<u64> {
        if self.height <= 1 {
            return Ok(1);
        }
        let mut count = 0u64;
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            let node = self.read_node(env, page)?;
            for e in &node.entries {
                env.charge(CpuOp::RectTest, 1);
                if !e.rect.intersects(window) {
                    continue;
                }
                if level == 2 {
                    // Children of this node are leaves.
                    count += 1;
                } else {
                    stack.push((e.child_page(), level - 1));
                }
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid_items(n_side: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f32 * 10.0;
                let y = j as f32 * 10.0;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + 5.0, y + 5.0),
                    i * n_side + j,
                ));
            }
        }
        out
    }

    fn brute_query(items: &[Item], window: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = items
            .iter()
            .filter(|it| it.rect.intersects(window))
            .map(|it| it.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn window_query_matches_brute_force() {
        let mut env = env();
        let items = grid_items(40);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        for window in [
            Rect::from_coords(0.0, 0.0, 50.0, 50.0),
            Rect::from_coords(100.0, 100.0, 102.0, 300.0),
            Rect::from_coords(-10.0, -10.0, -1.0, -1.0),
            Rect::from_coords(0.0, 0.0, 400.0, 400.0),
        ] {
            let mut got: Vec<u32> = tree
                .window_query(&mut env, &window)
                .unwrap()
                .iter()
                .map(|it| it.id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_query(&items, &window), "window {window:?}");
        }
    }

    #[test]
    fn query_reads_fewer_pages_than_full_scan_for_small_windows() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        env.device.reset_stats();
        let window = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let _ = tree.window_query(&mut env, &window).unwrap();
        let pages = env.device.stats().pages_read;
        assert!(
            pages < tree.nodes(),
            "small window query should not touch all {} nodes (touched {pages})",
            tree.nodes()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut env = env();
        let items = grid_items(50);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let s = tree.stats();
        assert_eq!(s.nodes, s.leaves + s.internal);
        assert_eq!(s.items, 2500);
        assert_eq!(s.size_bytes, s.nodes * PAGE_SIZE as u64);
        assert!(s.avg_leaf_fill > 0.5 && s.avg_leaf_fill <= 1.0);
        assert_eq!(s.height, tree.height());
        assert_eq!(tree.level_counts().len() as u32, tree.height());
    }

    #[test]
    fn pooled_reads_hit_the_buffer_pool() {
        let mut env = env();
        let items = grid_items(30);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let mut pool = LruBufferPool::new(64);
        env.device.reset_stats();
        let root = tree.root();
        let _ = tree.read_node_pooled(&mut env, &mut pool, root).unwrap();
        let _ = tree.read_node_pooled(&mut env, &mut pool, root).unwrap();
        let _ = tree.read_node_pooled(&mut env, &mut pool, root).unwrap();
        assert_eq!(env.device.stats().pages_read, 1);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn leaves_intersecting_bounds_the_join_extent() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let all = tree.leaves_intersecting(&mut env, &tree.bbox()).unwrap();
        assert_eq!(all, tree.num_leaves());
        let some = tree
            .leaves_intersecting(&mut env, &Rect::from_coords(0.0, 0.0, 30.0, 30.0))
            .unwrap();
        assert!(some >= 1);
        assert!(some < all);
        let none = tree
            .leaves_intersecting(&mut env, &Rect::from_coords(-100.0, -100.0, -50.0, -50.0))
            .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn empty_tree_window_query_returns_nothing() {
        let mut env = env();
        let tree = RTree::bulk_load(&mut env, &[]).unwrap();
        let got = tree
            .window_query(&mut env, &Rect::from_coords(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert!(got.is_empty());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.num_internal(), 0);
    }
}
