//! The [`RTree`] handle: node access, window queries and statistics.

use std::ops::ControlFlow;

use usj_geom::{Item, Point, Rect};
use usj_io::{CpuOp, IoSimError, PageId, Result, SimEnv, PAGE_SIZE};

use crate::node::{Node, NodeKind};
use crate::store::NodeStore;

/// A bulk-loaded, read-only R-tree stored on the simulated device.
///
/// The tree is immutable after bulk loading, matching the paper's setup
/// (packed trees built once per data set; Section 6.3 discusses separately
/// what repeated updates would do to the layout).
#[derive(Debug, Clone)]
pub struct RTree {
    root: PageId,
    height: u32,
    num_items: u64,
    /// Number of nodes on each level, leaves first.
    level_counts: Vec<u64>,
    bbox: Rect,
}

/// Summary statistics of a tree, used by Table 2 and the experiment harness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeStats {
    /// Total number of nodes (the "lower bound" page count of Table 4).
    pub nodes: u64,
    /// Number of leaf nodes.
    pub leaves: u64,
    /// Number of internal nodes.
    pub internal: u64,
    /// Height of the tree (1 for a single leaf).
    pub height: u32,
    /// Number of data items indexed.
    pub items: u64,
    /// Size of the index on disk in bytes.
    pub size_bytes: u64,
    /// Average leaf fill relative to the maximum fanout.
    pub avg_leaf_fill: f64,
}

impl RTree {
    /// Internal constructor used by the bulk loader.
    pub(crate) fn from_build(
        root: PageId,
        height: u32,
        num_items: u64,
        level_counts: Vec<u64>,
        bbox: Rect,
    ) -> Self {
        RTree {
            root,
            height,
            num_items,
            level_counts,
            bbox,
        }
    }

    /// Bulk loads a tree from an in-memory slice with the default
    /// configuration (convenience wrapper around [`crate::bulk::bulk_load`]).
    pub fn bulk_load(env: &mut SimEnv, items: &[Item]) -> Result<RTree> {
        crate::bulk::bulk_load(env, items, crate::bulk::BulkLoadConfig::default())
    }

    /// Bulk loads a tree from an item stream with the default configuration.
    pub fn bulk_load_stream(env: &mut SimEnv, input: &usj_io::ItemStream) -> Result<RTree> {
        crate::bulk::bulk_load_stream(env, input, crate::bulk::BulkLoadConfig::default())
    }

    /// Page number of the root node.
    pub fn root(&self) -> PageId {
        self.root
    }

    /// Height of the tree (a single-leaf tree has height 1).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of indexed items.
    pub fn num_items(&self) -> u64 {
        self.num_items
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> u64 {
        self.level_counts.first().copied().unwrap_or(0)
    }

    /// Number of internal nodes.
    pub fn num_internal(&self) -> u64 {
        self.level_counts.iter().skip(1).sum()
    }

    /// Total number of nodes; this is the paper's "lower bound" on page
    /// requests for a dense join involving the whole tree.
    pub fn nodes(&self) -> u64 {
        self.level_counts.iter().sum()
    }

    /// Nodes per level, leaves first.
    pub fn level_counts(&self) -> &[u64] {
        &self.level_counts
    }

    /// Size of the index on disk, in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.nodes() * PAGE_SIZE as u64
    }

    /// Bounding box of the indexed data.
    pub fn bbox(&self) -> Rect {
        self.bbox
    }

    /// Summary statistics.
    pub fn stats(&self) -> RTreeStats {
        let leaves = self.num_leaves();
        RTreeStats {
            nodes: self.nodes(),
            leaves,
            internal: self.num_internal(),
            height: self.height,
            items: self.num_items,
            size_bytes: self.size_bytes(),
            avg_leaf_fill: if leaves == 0 {
                0.0
            } else {
                self.num_items as f64 / (leaves as f64 * crate::node::MAX_FANOUT as f64)
            },
        }
    }

    /// Reads and decodes a node directly from the device (one page request).
    pub fn read_node(&self, env: &mut SimEnv, page: PageId) -> Result<Node> {
        let bytes = env.device.read_page(page)?;
        let node = Node::decode(&bytes)?;
        env.charge(CpuOp::ItemMove, node.len() as u64);
        Ok(node)
    }

    /// Window query: returns every indexed item whose MBR intersects `window`.
    ///
    /// Performs a depth-first traversal reading only nodes whose directory
    /// rectangle intersects the window.
    pub fn window_query(&self, env: &mut SimEnv, window: &Rect) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = self.read_node(env, page)?;
            for e in &node.entries {
                env.charge(CpuOp::RectTest, 1);
                if !e.rect.intersects(window) {
                    continue;
                }
                match node.kind {
                    NodeKind::Leaf => out.push(e.as_item()),
                    NodeKind::Internal => stack.push(e.child_page()),
                }
            }
        }
        Ok(out)
    }

    /// Window query through a [`NodeStore`], streaming every matching item
    /// into `visit` with [`ControlFlow`]-based early termination.
    ///
    /// This is the service-grade form of [`window_query`](RTree::window_query):
    /// node reads go through the store's buffer pool (repeat queries over a
    /// cataloged tree hit the cache instead of the device), and the consumer
    /// can stop the traversal — a `LIMIT`ed or cancelled selection stops
    /// paying I/O at the break point. Returns `true` when the traversal ran
    /// to completion, `false` when `visit` broke it off.
    pub fn window_query_via(
        &self,
        env: &mut SimEnv,
        store: &mut NodeStore,
        window: &Rect,
        visit: &mut dyn FnMut(Item) -> ControlFlow<()>,
    ) -> Result<bool> {
        let mut stack = vec![self.root];
        while let Some(page) = stack.pop() {
            let node = store.read(env, page)?;
            for e in &node.entries {
                env.charge(CpuOp::RectTest, 1);
                if !e.rect.intersects(window) {
                    continue;
                }
                match node.kind {
                    NodeKind::Leaf => {
                        if visit(e.as_item()).is_break() {
                            return Ok(false);
                        }
                    }
                    NodeKind::Internal => stack.push(e.child_page()),
                }
            }
        }
        Ok(true)
    }

    /// Window query through a [`NodeStore`], collecting the matching items.
    pub fn window_query_pooled(
        &self,
        env: &mut SimEnv,
        store: &mut NodeStore,
        window: &Rect,
    ) -> Result<Vec<Item>> {
        let mut out = Vec::new();
        self.window_query_via(env, store, window, &mut |it| {
            out.push(it);
            ControlFlow::Continue(())
        })?;
        Ok(out)
    }

    /// One shared traversal answering several window queries at once.
    ///
    /// A batch of compatible selections over one cataloged tree does not
    /// need one descent per query: a single depth-first traversal descends
    /// a node when **any** active query's window intersects it and reports
    /// each matching leaf item as a `(query_index, item)` event through
    /// `visit`. Each stack frame carries the *candidate set* — the queries
    /// whose windows intersected the node's parent entry. By MBR
    /// containment no other query can match anything below that entry, so
    /// the total rect tests stay proportional to the **sum of the solo
    /// traversals** (not batch size × the union of visited leaves), while
    /// every shared page is still decoded only once.
    ///
    /// Per-query semantics are identical to running
    /// [`window_query_via`](RTree::window_query_via) once per window:
    ///
    /// * query `i` observes exactly the items intersecting `windows[i]`, in
    ///   exactly the order a solo traversal would deliver them (the shared
    ///   traversal visits a superset of nodes, but the depth-first order of
    ///   the shared nodes is unchanged, and pruned-for-`i` subtrees cannot
    ///   contain matches for `i`);
    /// * `visit` returning `Break` deactivates **only** query `i` — its
    ///   `LIMIT` was reached or it was cancelled — and the traversal keeps
    ///   serving the remaining queries;
    /// * the traversal stops entirely (saving the remaining I/O) once every
    ///   query is done.
    ///
    /// Returns the number of queries still active when the traversal
    /// finished (i.e. those that ran to completion rather than breaking).
    pub fn multi_window_query(
        &self,
        env: &mut SimEnv,
        store: &mut NodeStore,
        windows: &[Rect],
        visit: &mut dyn FnMut(usize, Item) -> ControlFlow<()>,
    ) -> Result<usize> {
        let mut active = vec![true; windows.len()];
        let mut live = windows.len();
        if live == 0 {
            return Ok(0);
        }
        let all: Vec<u32> = (0..windows.len() as u32).collect();
        let mut stack = vec![(self.root, all)];
        while let Some((page, candidates)) = stack.pop() {
            let node = store.read(env, page)?;
            for e in &node.entries {
                match node.kind {
                    NodeKind::Leaf => {
                        for &q in &candidates {
                            let i = q as usize;
                            if !active[i] {
                                continue;
                            }
                            env.charge(CpuOp::RectTest, 1);
                            if e.rect.intersects(&windows[i])
                                && visit(i, e.as_item()).is_break()
                            {
                                active[i] = false;
                                live -= 1;
                                if live == 0 {
                                    return Ok(0);
                                }
                            }
                        }
                    }
                    NodeKind::Internal => {
                        let mut down: Vec<u32> = Vec::new();
                        for &q in &candidates {
                            let i = q as usize;
                            if !active[i] {
                                continue;
                            }
                            env.charge(CpuOp::RectTest, 1);
                            if e.rect.intersects(&windows[i]) {
                                down.push(q);
                            }
                        }
                        if !down.is_empty() {
                            stack.push((e.child_page(), down));
                        }
                    }
                }
            }
        }
        Ok(live)
    }

    /// Point (stabbing) query through a [`NodeStore`]: every indexed item
    /// whose MBR contains `point`.
    pub fn point_query(
        &self,
        env: &mut SimEnv,
        store: &mut NodeStore,
        point: &Point,
    ) -> Result<Vec<Item>> {
        self.window_query_pooled(
            env,
            store,
            &Rect::from_coords(point.x, point.y, point.x, point.y),
        )
    }

    /// Serializes the tree *handle* (root page, height, item count, level
    /// profile, bounding box — not the nodes, which already live on the
    /// device) for embedding in an on-device directory.
    pub fn encode_meta(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(40 + self.level_counts.len() * 8);
        buf.extend_from_slice(&self.root.to_le_bytes());
        buf.extend_from_slice(&self.height.to_le_bytes());
        buf.extend_from_slice(&self.num_items.to_le_bytes());
        buf.extend_from_slice(&(self.level_counts.len() as u32).to_le_bytes());
        for c in &self.level_counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        for v in [self.bbox.lo.x, self.bbox.lo.y, self.bbox.hi.x, self.bbox.hi.y] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf
    }

    /// Decodes a handle produced by [`encode_meta`](RTree::encode_meta),
    /// returning the tree and the number of bytes consumed. The handle
    /// refers to device pages by identifier, so it is only meaningful on the
    /// device (or a snapshot of the device) it was encoded on.
    pub fn decode_meta(buf: &[u8]) -> Result<(RTree, usize)> {
        let err = IoSimError::CorruptRecord("tree handle truncated");
        let bytes = |off: usize, n: usize| buf.get(off..off + n).ok_or(err.clone());
        let u64_at = |off: usize| -> Result<u64> {
            Ok(u64::from_le_bytes(bytes(off, 8)?.try_into().expect("len")))
        };
        let u32_at = |off: usize| -> Result<u32> {
            Ok(u32::from_le_bytes(bytes(off, 4)?.try_into().expect("len")))
        };
        let f32_at = |off: usize| -> Result<f32> {
            Ok(f32::from_le_bytes(bytes(off, 4)?.try_into().expect("len")))
        };
        let root = u64_at(0)?;
        let height = u32_at(8)?;
        let num_items = u64_at(12)?;
        let levels = u32_at(20)? as usize;
        // Validate the level count against the buffer before allocating, so
        // a corrupt handle errors instead of attempting an absurd
        // allocation.
        if levels
            .checked_mul(8)
            .and_then(|b| b.checked_add(24 + 16))
            .map_or(true, |need| need > buf.len())
        {
            return Err(err);
        }
        let mut level_counts = Vec::with_capacity(levels);
        for i in 0..levels {
            level_counts.push(u64_at(24 + i * 8)?);
        }
        let off = 24 + levels * 8;
        let bbox = Rect::from_coords(
            f32_at(off)?,
            f32_at(off + 4)?,
            f32_at(off + 8)?,
            f32_at(off + 12)?,
        );
        Ok((
            RTree {
                root,
                height,
                num_items,
                level_counts,
                bbox,
            },
            off + 16,
        ))
    }

    /// Counts the leaf pages whose directory rectangle intersects `window`
    /// without descending into them (used by the cost-based join selector to
    /// estimate what fraction of the index a join would touch).
    pub fn leaves_intersecting(&self, env: &mut SimEnv, window: &Rect) -> Result<u64> {
        if self.height <= 1 {
            return Ok(1);
        }
        let mut count = 0u64;
        let mut stack = vec![(self.root, self.height)];
        while let Some((page, level)) = stack.pop() {
            let node = self.read_node(env, page)?;
            for e in &node.entries {
                env.charge(CpuOp::RectTest, 1);
                if !e.rect.intersects(window) {
                    continue;
                }
                if level == 2 {
                    // Children of this node are leaves.
                    count += 1;
                } else {
                    stack.push((e.child_page(), level - 1));
                }
            }
        }
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid_items(n_side: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f32 * 10.0;
                let y = j as f32 * 10.0;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + 5.0, y + 5.0),
                    i * n_side + j,
                ));
            }
        }
        out
    }

    fn brute_query(items: &[Item], window: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = items
            .iter()
            .filter(|it| it.rect.intersects(window))
            .map(|it| it.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn window_query_matches_brute_force() {
        let mut env = env();
        let items = grid_items(40);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        for window in [
            Rect::from_coords(0.0, 0.0, 50.0, 50.0),
            Rect::from_coords(100.0, 100.0, 102.0, 300.0),
            Rect::from_coords(-10.0, -10.0, -1.0, -1.0),
            Rect::from_coords(0.0, 0.0, 400.0, 400.0),
        ] {
            let mut got: Vec<u32> = tree
                .window_query(&mut env, &window)
                .unwrap()
                .iter()
                .map(|it| it.id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute_query(&items, &window), "window {window:?}");
        }
    }

    #[test]
    fn query_reads_fewer_pages_than_full_scan_for_small_windows() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        env.device.reset_stats();
        let window = Rect::from_coords(0.0, 0.0, 30.0, 30.0);
        let _ = tree.window_query(&mut env, &window).unwrap();
        let pages = env.device.stats().pages_read;
        assert!(
            pages < tree.nodes(),
            "small window query should not touch all {} nodes (touched {pages})",
            tree.nodes()
        );
    }

    #[test]
    fn stats_are_consistent() {
        let mut env = env();
        let items = grid_items(50);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let s = tree.stats();
        assert_eq!(s.nodes, s.leaves + s.internal);
        assert_eq!(s.items, 2500);
        assert_eq!(s.size_bytes, s.nodes * PAGE_SIZE as u64);
        assert!(s.avg_leaf_fill > 0.5 && s.avg_leaf_fill <= 1.0);
        assert_eq!(s.height, tree.height());
        assert_eq!(tree.level_counts().len() as u32, tree.height());
    }

    #[test]
    fn pooled_reads_hit_the_buffer_pool() {
        let mut env = env();
        let items = grid_items(30);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let mut store = NodeStore::with_capacity_bytes(64 * PAGE_SIZE);
        env.device.reset_stats();
        let root = tree.root();
        let _ = store.read(&mut env, root).unwrap();
        let _ = store.read(&mut env, root).unwrap();
        let _ = store.read(&mut env, root).unwrap();
        assert_eq!(env.device.stats().pages_read, 1);
        assert_eq!(store.stats().hits, 2);
    }

    #[test]
    fn leaves_intersecting_bounds_the_join_extent() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let all = tree.leaves_intersecting(&mut env, &tree.bbox()).unwrap();
        assert_eq!(all, tree.num_leaves());
        let some = tree
            .leaves_intersecting(&mut env, &Rect::from_coords(0.0, 0.0, 30.0, 30.0))
            .unwrap();
        assert!(some >= 1);
        assert!(some < all);
        let none = tree
            .leaves_intersecting(&mut env, &Rect::from_coords(-100.0, -100.0, -50.0, -50.0))
            .unwrap();
        assert_eq!(none, 0);
    }

    #[test]
    fn pooled_window_query_matches_the_direct_one_and_caches_repeats() {
        let mut env = env();
        let items = grid_items(40);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let window = Rect::from_coords(55.0, 55.0, 180.0, 180.0);
        let mut store = NodeStore::with_capacity_bytes(1 << 20);

        let mut direct: Vec<u32> = tree
            .window_query(&mut env, &window)
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        direct.sort_unstable();

        env.device.reset_stats();
        let mut pooled: Vec<u32> = tree
            .window_query_pooled(&mut env, &mut store, &window)
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        pooled.sort_unstable();
        assert_eq!(pooled, direct);
        let first_pass = env.device.stats().pages_read;
        assert!(first_pass > 0);

        // The repeat query is served from the store.
        let again = tree.window_query_pooled(&mut env, &mut store, &window).unwrap();
        assert_eq!(again.len(), pooled.len());
        assert_eq!(env.device.stats().pages_read, first_pass, "repeat must be all hits");
    }

    #[test]
    fn window_query_via_stops_early_on_break() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        env.device.reset_stats();
        let mut seen = 0u32;
        let completed = tree
            .window_query_via(&mut env, &mut store, &tree.bbox(), &mut |_| {
                seen += 1;
                if seen >= 5 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert!(!completed);
        assert_eq!(seen, 5);
        assert!(
            env.device.stats().pages_read < tree.nodes(),
            "a broken traversal must not touch the whole tree"
        );
    }

    #[test]
    fn point_query_matches_brute_force() {
        let mut env = env();
        let items = grid_items(30);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        for p in [Point::new(12.0, 42.0), Point::new(7.0, 7.0), Point::new(-3.0, 4.0)] {
            let mut got: Vec<u32> = tree
                .point_query(&mut env, &mut store, &p)
                .unwrap()
                .iter()
                .map(|it| it.id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<u32> = items
                .iter()
                .filter(|it| it.rect.contains(&Rect::from_coords(p.x, p.y, p.x, p.y)))
                .map(|it| it.id)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "point {p:?}");
        }
    }

    #[test]
    fn meta_roundtrip_reopens_the_same_tree() {
        let mut env = env();
        let items = grid_items(35);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let mut blob = tree.encode_meta();
        blob.extend_from_slice(b"tail");
        let (back, consumed) = RTree::decode_meta(&blob).unwrap();
        assert_eq!(consumed, tree.encode_meta().len());
        assert_eq!(back.root(), tree.root());
        assert_eq!(back.height(), tree.height());
        assert_eq!(back.num_items(), tree.num_items());
        assert_eq!(back.level_counts(), tree.level_counts());
        assert_eq!(back.bbox(), tree.bbox());
        // The reopened handle traverses the same on-device nodes.
        let window = Rect::from_coords(0.0, 0.0, 60.0, 60.0);
        let a = back.window_query(&mut env, &window).unwrap();
        let b = tree.window_query(&mut env, &window).unwrap();
        assert_eq!(a, b);
        assert!(RTree::decode_meta(&blob[..12]).is_err());
    }

    /// Collects one query's items through a solo `window_query_via`
    /// traversal, optionally breaking after `limit` items (mimicking a
    /// `LIMIT`ed or cancelled consumer).
    fn solo(
        env: &mut SimEnv,
        tree: &RTree,
        window: &Rect,
        limit: Option<usize>,
    ) -> Vec<u32> {
        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        let mut got = Vec::new();
        tree.window_query_via(env, &mut store, window, &mut |it| {
            if limit.is_some_and(|l| got.len() >= l) {
                return ControlFlow::Break(());
            }
            got.push(it.id);
            ControlFlow::Continue(())
        })
        .unwrap();
        got
    }

    #[test]
    fn multi_window_query_is_byte_identical_to_solo_traversals() {
        let mut env = env();
        let items = grid_items(40);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let windows = [
            Rect::from_coords(0.0, 0.0, 80.0, 80.0),
            Rect::from_coords(55.0, 55.0, 180.0, 180.0),
            Rect::from_coords(-10.0, -10.0, -1.0, -1.0), // empty result
            Rect::from_coords(0.0, 0.0, 400.0, 400.0),   // everything
            Rect::from_coords(120.0, 3.0, 122.0, 390.0), // thin stripe
        ];
        let expected: Vec<Vec<u32>> =
            windows.iter().map(|w| solo(&mut env, &tree, w, None)).collect();

        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); windows.len()];
        env.device.reset_stats();
        let live = tree
            .multi_window_query(&mut env, &mut store, &windows, &mut |i, it| {
                got[i].push(it.id);
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(live, windows.len(), "no query broke");
        // Identical item sequences per query — order included.
        assert_eq!(got, expected);
        // One shared traversal reads each touched node once, while five solo
        // cold traversals would pay for the shared prefix five times.
        let shared_pages = env.device.stats().pages_read;
        assert!(shared_pages <= tree.nodes());
    }

    #[test]
    fn multi_window_query_deactivates_broken_queries_individually() {
        let mut env = env();
        let items = grid_items(40);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let big = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
        let windows = [big, big, Rect::from_coords(0.0, 0.0, 45.0, 45.0)];
        // Query 0 stops after 7 items, query 2 after 3; query 1 runs dry.
        let limits = [Some(7usize), None, Some(3)];
        let expected: Vec<Vec<u32>> = windows
            .iter()
            .zip(limits)
            .map(|(w, l)| solo(&mut env, &tree, w, l))
            .collect();

        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        let mut got: Vec<Vec<u32>> = vec![Vec::new(); windows.len()];
        let live = tree
            .multi_window_query(&mut env, &mut store, &windows, &mut |i, it| {
                if limits[i].is_some_and(|l| got[i].len() >= l) {
                    return ControlFlow::Break(());
                }
                got[i].push(it.id);
                ControlFlow::Continue(())
            })
            .unwrap();
        assert_eq!(live, 1, "only the unlimited query survives");
        assert_eq!(got, expected);
        assert_eq!(got[0].len(), 7);
        assert_eq!(got[2].len(), 3);
    }

    #[test]
    fn multi_window_query_stops_entirely_when_every_query_breaks() {
        let mut env = env();
        let items = grid_items(60);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        let windows = [tree.bbox(), tree.bbox()];
        let mut store = NodeStore::with_capacity_bytes(1 << 20);
        env.device.reset_stats();
        let mut seen = [0u32; 2];
        let live = tree
            .multi_window_query(&mut env, &mut store, &windows, &mut |i, _| {
                seen[i] += 1;
                if seen[i] >= 4 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            })
            .unwrap();
        assert_eq!(live, 0);
        assert_eq!(seen, [4, 4]);
        assert!(
            env.device.stats().pages_read < tree.nodes(),
            "a fully-broken batch must stop paying I/O"
        );
        // The empty batch is a no-op.
        let live = tree
            .multi_window_query(&mut env, &mut store, &[], &mut |_, _| {
                panic!("no windows, no visits")
            })
            .unwrap();
        assert_eq!(live, 0);
    }

    #[test]
    fn empty_tree_window_query_returns_nothing() {
        let mut env = env();
        let tree = RTree::bulk_load(&mut env, &[]).unwrap();
        let got = tree
            .window_query(&mut env, &Rect::from_coords(0.0, 0.0, 10.0, 10.0))
            .unwrap();
        assert!(got.is_empty());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.num_internal(), 0);
    }
}
