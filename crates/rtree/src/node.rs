//! On-page R-tree node format.
//!
//! A node occupies exactly one 8 KiB page. The paper sets the maximum fanout
//! to 400 entries of 20 bytes each (a bounding rectangle plus either a child
//! page number or an object identifier), which leaves room for a small
//! header.

use usj_geom::{Item, Point, Rect};
use usj_io::{IoSimError, PageId, Result, PAGE_SIZE};

/// Maximum number of entries per node (the paper's fanout of 400).
pub const MAX_FANOUT: usize = 400;

/// Size of one serialized entry: 16 bytes of rectangle + 4 bytes of payload.
pub const ENTRY_BYTES: usize = 20;

/// Byte offset of the first entry (after the node header).
const HEADER_BYTES: usize = 4;

/// Whether a node is a leaf (entries point at data objects) or an internal
/// node (entries point at child pages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// Entries are data MBRs with object identifiers.
    Leaf,
    /// Entries are directory rectangles with child page numbers.
    Internal,
}

/// One entry of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeEntry {
    /// Bounding rectangle of the entry.
    pub rect: Rect,
    /// Object identifier (leaf) or child page number (internal).
    pub payload: u32,
}

impl NodeEntry {
    /// Interprets the entry as a data item (valid for leaf entries).
    pub fn as_item(&self) -> Item {
        Item::new(self.rect, self.payload)
    }

    /// Interprets the entry's payload as a child page number.
    pub fn child_page(&self) -> PageId {
        PageId::from(self.payload)
    }
}

/// A decoded R-tree node.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Leaf or internal.
    pub kind: NodeKind,
    /// The node's entries, at most [`MAX_FANOUT`].
    pub entries: Vec<NodeEntry>,
}

impl Node {
    /// Creates an empty node of the given kind.
    pub fn new(kind: NodeKind) -> Self {
        Node {
            kind,
            entries: Vec::new(),
        }
    }

    /// Number of entries in the node.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the node has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Directory rectangle: the union of all entry rectangles.
    pub fn mbr(&self) -> Rect {
        self.entries
            .iter()
            .fold(Rect::empty(), |acc, e| acc.union(&e.rect))
    }

    /// Serializes the node into a page-sized buffer.
    ///
    /// # Panics
    ///
    /// Panics if the node holds more than [`MAX_FANOUT`] entries.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.entries.len() <= MAX_FANOUT, "node overflows the fanout");
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = match self.kind {
            NodeKind::Leaf => 0,
            NodeKind::Internal => 1,
        };
        let count = self.entries.len() as u16;
        buf[1..3].copy_from_slice(&count.to_le_bytes());
        for (i, e) in self.entries.iter().enumerate() {
            let off = HEADER_BYTES + i * ENTRY_BYTES;
            buf[off..off + 4].copy_from_slice(&e.rect.lo.x.to_le_bytes());
            buf[off + 4..off + 8].copy_from_slice(&e.rect.lo.y.to_le_bytes());
            buf[off + 8..off + 12].copy_from_slice(&e.rect.hi.x.to_le_bytes());
            buf[off + 12..off + 16].copy_from_slice(&e.rect.hi.y.to_le_bytes());
            buf[off + 16..off + 20].copy_from_slice(&e.payload.to_le_bytes());
        }
        buf
    }

    /// Decodes a node from a page buffer.
    pub fn decode(buf: &[u8]) -> Result<Node> {
        if buf.len() < HEADER_BYTES {
            return Err(IoSimError::CorruptRecord("node page too small"));
        }
        let kind = match buf[0] {
            0 => NodeKind::Leaf,
            1 => NodeKind::Internal,
            _ => return Err(IoSimError::CorruptRecord("unknown node kind")),
        };
        let count = u16::from_le_bytes([buf[1], buf[2]]) as usize;
        if count > MAX_FANOUT || HEADER_BYTES + count * ENTRY_BYTES > buf.len() {
            return Err(IoSimError::CorruptRecord("node entry count out of range"));
        }
        let mut entries = Vec::with_capacity(count);
        for i in 0..count {
            let off = HEADER_BYTES + i * ENTRY_BYTES;
            let f = |o: usize| f32::from_le_bytes([buf[o], buf[o + 1], buf[o + 2], buf[o + 3]]);
            let payload =
                u32::from_le_bytes([buf[off + 16], buf[off + 17], buf[off + 18], buf[off + 19]]);
            entries.push(NodeEntry {
                rect: Rect {
                    lo: Point::new(f(off), f(off + 4)),
                    hi: Point::new(f(off + 8), f(off + 12)),
                },
                payload,
            });
        }
        Ok(Node { kind, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(x0: f32, y0: f32, x1: f32, y1: f32, payload: u32) -> NodeEntry {
        NodeEntry {
            rect: Rect::from_coords(x0, y0, x1, y1),
            payload,
        }
    }

    // 400 entries of 20 bytes plus the header must fit in one 8 KiB page.
    const _: () = assert!(HEADER_BYTES + MAX_FANOUT * ENTRY_BYTES <= PAGE_SIZE);

    #[test]
    fn fanout_matches_the_paper() {
        assert_eq!(MAX_FANOUT, 400);
    }

    #[test]
    fn encode_decode_roundtrip_leaf() {
        let mut n = Node::new(NodeKind::Leaf);
        for i in 0..37 {
            let f = i as f32;
            n.entries.push(entry(f, f * 2.0, f + 1.0, f * 2.0 + 1.0, i));
        }
        let buf = n.encode();
        assert_eq!(buf.len(), PAGE_SIZE);
        assert_eq!(Node::decode(&buf).unwrap(), n);
    }

    #[test]
    fn encode_decode_roundtrip_internal_and_full_node() {
        let mut n = Node::new(NodeKind::Internal);
        for i in 0..MAX_FANOUT as u32 {
            let f = i as f32;
            n.entries.push(entry(f, f, f + 2.0, f + 2.0, i + 100));
        }
        let decoded = Node::decode(&n.encode()).unwrap();
        assert_eq!(decoded.kind, NodeKind::Internal);
        assert_eq!(decoded.len(), MAX_FANOUT);
        assert_eq!(decoded.entries[5].child_page(), 105);
    }

    #[test]
    fn empty_node_roundtrip() {
        let n = Node::new(NodeKind::Leaf);
        let decoded = Node::decode(&n.encode()).unwrap();
        assert!(decoded.is_empty());
        assert!(decoded.mbr().is_empty());
    }

    #[test]
    fn mbr_covers_all_entries() {
        let mut n = Node::new(NodeKind::Leaf);
        n.entries.push(entry(0.0, 0.0, 1.0, 1.0, 1));
        n.entries.push(entry(5.0, -2.0, 6.0, 0.5, 2));
        let mbr = n.mbr();
        assert_eq!(mbr, Rect::from_coords(0.0, -2.0, 6.0, 1.0));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Node::decode(&[1, 2]).is_err());
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = 9; // unknown kind
        assert!(Node::decode(&buf).is_err());
        let mut buf = vec![0u8; PAGE_SIZE];
        buf[0] = 0;
        buf[1..3].copy_from_slice(&u16::MAX.to_le_bytes()); // absurd count
        assert!(Node::decode(&buf).is_err());
    }

    #[test]
    fn leaf_entry_converts_to_item() {
        let e = entry(1.0, 2.0, 3.0, 4.0, 77);
        let it = e.as_item();
        assert_eq!(it.id, 77);
        assert_eq!(it.rect, Rect::from_coords(1.0, 2.0, 3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "overflows the fanout")]
    fn encode_rejects_overfull_node() {
        let mut n = Node::new(NodeKind::Leaf);
        for i in 0..(MAX_FANOUT as u32 + 1) {
            n.entries.push(entry(0.0, 0.0, 1.0, 1.0, i));
        }
        let _ = n.encode();
    }
}
