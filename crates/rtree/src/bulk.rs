//! Hilbert bulk loading.
//!
//! The trees are built exactly as in the paper's experimental setup
//! (Section 3.3): rectangles are sorted by the Hilbert value of their centre
//! point, leaves are packed in that order, and the upper levels are built
//! bottom-up from the leaf directory rectangles. Following DeWitt et al.,
//! nodes are not packed to 100 %: each node is filled to 75 % of the fanout
//! and additional rectangles are admitted only while they do not increase the
//! area already covered by the node by more than 20 %. Because nodes are
//! allocated in construction order, the children of every node end up laid
//! out consecutively on the simulated disk.

use usj_geom::{hilbert, Item, Rect};
use usj_io::{extsort, CpuOp, ItemStream, Result, SimEnv};

use crate::node::{Node, NodeEntry, NodeKind, MAX_FANOUT};
use crate::tree::RTree;

/// Tuning parameters for bulk loading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BulkLoadConfig {
    /// Maximum entries per node (defaults to the paper's 400).
    pub max_fanout: usize,
    /// Entries packed unconditionally into each node (defaults to 75 % of the
    /// fanout).
    pub fill_target: usize,
    /// Additional entries are admitted while they grow the node's directory
    /// rectangle by at most this fraction of its current area (defaults to
    /// 20 %).
    pub area_slack: f64,
}

impl Default for BulkLoadConfig {
    fn default() -> Self {
        BulkLoadConfig {
            max_fanout: MAX_FANOUT,
            fill_target: MAX_FANOUT * 3 / 4,
            area_slack: 0.20,
        }
    }
}

impl BulkLoadConfig {
    /// A configuration that packs every node completely, used by the
    /// index-quality ablation (`repro -- ablation-packing`).
    pub fn fully_packed() -> Self {
        BulkLoadConfig {
            max_fanout: MAX_FANOUT,
            fill_target: MAX_FANOUT,
            area_slack: 0.0,
        }
    }

    /// Validates and clamps the configuration.
    fn normalized(mut self) -> Self {
        self.max_fanout = self.max_fanout.clamp(2, MAX_FANOUT);
        self.fill_target = self.fill_target.clamp(1, self.max_fanout);
        self.area_slack = self.area_slack.max(0.0);
        self
    }
}

/// Bulk loads an R-tree from an in-memory slice of items.
///
/// The items are sorted in memory (charged to the deterministic CPU model)
/// and the nodes are written to the simulated device level by level, leaves
/// first.
pub fn bulk_load(env: &mut SimEnv, items: &[Item], config: BulkLoadConfig) -> Result<RTree> {
    let config = config.normalized();
    let bbox = bounding_box(items.iter().map(|it| it.rect));
    let mut keyed: Vec<(u64, Item)> = items
        .iter()
        .map(|it| {
            let c = it.rect.center();
            (hilbert::hilbert_value(c.x, c.y, &bbox), *it)
        })
        .collect();
    let n = keyed.len() as u64;
    if n > 1 {
        let log = (64 - n.leading_zeros()) as u64;
        env.charge(CpuOp::Compare, n * log);
        env.charge(CpuOp::ItemMove, n);
    }
    keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp_by_lower_y(&b.1)));

    let mut iter = keyed.iter().map(|(_, it)| *it);
    let mut next = move |_env: &mut SimEnv| -> Result<Option<Item>> { Ok(iter.next()) };
    pack_from_sorted(env, &mut next, items.len() as u64, bbox, config)
}

/// Bulk loads an R-tree from an item stream, using the external mergesort to
/// order the items by Hilbert value (one extra scan computes the bounding box
/// first, as a real loader would).
pub fn bulk_load_stream(
    env: &mut SimEnv,
    input: &ItemStream,
    config: BulkLoadConfig,
) -> Result<RTree> {
    let config = config.normalized();
    // Pass 1: bounding box of the data space.
    let mut bbox = Rect::empty();
    let mut reader = input.reader();
    while let Some(it) = reader.next(env)? {
        bbox = bbox.union(&it.rect);
        env.charge(CpuOp::RectTest, 1);
    }
    if bbox.is_empty() {
        bbox = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    }
    // Pass 2: external sort by Hilbert value of the centre point. The value
    // is the sort's u64 key, so the run sorts and the merge heap compare
    // precomputed keys instead of re-deriving the Hilbert curve position on
    // every comparison.
    let space = bbox;
    let (sorted, _) = extsort::external_sort_by_key(
        env,
        input,
        move |it| {
            let c = it.rect.center();
            hilbert::hilbert_value(c.x, c.y, &space)
        },
        Item::cmp_by_lower_y,
    )?;
    // Pass 3: pack nodes from the sorted stream.
    let mut sorted_reader = sorted.reader();
    let mut next = move |env: &mut SimEnv| -> Result<Option<Item>> { sorted_reader.next(env) };
    pack_from_sorted(env, &mut next, input.len(), bbox, config)
}

/// Smallest rectangle covering all rectangles of the iterator.
pub fn bounding_box(rects: impl Iterator<Item = Rect>) -> Rect {
    let bbox = rects.fold(Rect::empty(), |acc, r| acc.union(&r));
    if bbox.is_empty() {
        Rect::from_coords(0.0, 0.0, 1.0, 1.0)
    } else {
        bbox
    }
}

/// Packs one level of entries into nodes using the 75 % + 20 %-area rule and
/// writes each node to its own freshly allocated page.
fn pack_level(
    env: &mut SimEnv,
    entries: &[NodeEntry],
    kind: NodeKind,
    config: &BulkLoadConfig,
) -> Result<Vec<NodeEntry>> {
    let mut parents = Vec::new();
    let mut i = 0;
    while i < entries.len() {
        let mut node = Node::new(kind);
        let mut mbr = Rect::empty();
        while i < entries.len() && node.len() < config.max_fanout {
            let e = entries[i];
            if node.len() >= config.fill_target {
                // Beyond the fill target, admit the entry only if it does not
                // grow the directory rectangle by more than the slack.
                env.charge(CpuOp::RectTest, 1);
                let area = mbr.area();
                let grown = mbr.union(&e.rect).area();
                let limit = if area > 0.0 {
                    area * (1.0 + config.area_slack)
                } else {
                    0.0
                };
                if grown > limit {
                    break;
                }
            }
            mbr = mbr.union(&e.rect);
            node.entries.push(e);
            env.charge(CpuOp::ItemMove, 1);
            i += 1;
        }
        let page = env.device.allocate(1);
        env.device.write_page(page, &node.encode())?;
        assert!(
            page <= u64::from(u32::MAX),
            "simulated volume exceeds the 32-bit page-number space of the node format"
        );
        parents.push(NodeEntry {
            rect: mbr,
            payload: page as u32,
        });
    }
    Ok(parents)
}

fn pack_from_sorted(
    env: &mut SimEnv,
    next: &mut dyn FnMut(&mut SimEnv) -> Result<Option<Item>>,
    num_items: u64,
    bbox: Rect,
    config: BulkLoadConfig,
) -> Result<RTree> {
    // Leaf level: stream the sorted items straight into packed leaves.
    let mut leaf_entries: Vec<NodeEntry> = Vec::new();
    while let Some(it) = next(env)? {
        leaf_entries.push(NodeEntry {
            rect: it.rect,
            payload: it.id,
        });
    }
    if leaf_entries.is_empty() {
        // Degenerate tree: a single empty leaf as root.
        let page = env.device.allocate(1);
        env.device.write_page(page, &Node::new(NodeKind::Leaf).encode())?;
        return Ok(RTree::from_build(page, 1, 0, vec![1], bbox));
    }

    let mut level_counts = Vec::new();
    let mut level = pack_level(env, &leaf_entries, NodeKind::Leaf, &config)?;
    level_counts.push(level.len() as u64);
    let mut height = 1;
    while level.len() > 1 {
        level = pack_level(env, &level, NodeKind::Internal, &config)?;
        level_counts.push(level.len() as u64);
        height += 1;
    }
    let root = level[0].child_page();
    Ok(RTree::from_build(root, height, num_items, level_counts, bbox))
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid_items(n_side: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n_side {
            for j in 0..n_side {
                let x = i as f32 * 10.0;
                let y = j as f32 * 10.0;
                out.push(Item::new(Rect::from_coords(x, y, x + 5.0, y + 5.0), i * n_side + j));
            }
        }
        out
    }

    #[test]
    fn default_config_matches_the_paper() {
        let c = BulkLoadConfig::default();
        assert_eq!(c.max_fanout, 400);
        assert_eq!(c.fill_target, 300);
        assert!((c.area_slack - 0.2).abs() < 1e-12);
    }

    #[test]
    fn small_input_builds_single_leaf_root() {
        let mut env = env();
        let items = grid_items(5); // 25 items, fits in one leaf
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        assert_eq!(tree.height(), 1);
        assert_eq!(tree.num_items(), 25);
        assert_eq!(tree.nodes(), 1);
    }

    #[test]
    fn larger_input_builds_multi_level_tree() {
        let mut env = env();
        let items = grid_items(40); // 1600 items -> several leaves + a root
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        assert!(tree.height() >= 2);
        assert!(tree.num_leaves() >= 4);
        assert_eq!(tree.num_items(), 1600);
        // All leaves plus internals are counted.
        assert_eq!(tree.nodes(), tree.num_leaves() + tree.num_internal());
    }

    #[test]
    fn packing_ratio_is_around_ninety_percent() {
        let mut env = env();
        let items = grid_items(70); // 4900 items
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        let ratio = tree.num_items() as f64 / (tree.num_leaves() as f64 * MAX_FANOUT as f64);
        assert!(
            ratio > 0.70 && ratio <= 1.0,
            "average leaf packing ratio {ratio} outside the expected range"
        );
    }

    #[test]
    fn fully_packed_config_uses_fewer_leaves() {
        let mut env = env();
        let items = grid_items(70);
        let packed = bulk_load(&mut env, &items, BulkLoadConfig::fully_packed()).unwrap();
        let default = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        assert!(packed.num_leaves() <= default.num_leaves());
        assert_eq!(packed.num_items(), default.num_items());
    }

    #[test]
    fn empty_input_builds_an_empty_tree() {
        let mut env = env();
        let tree = bulk_load(&mut env, &[], BulkLoadConfig::default()).unwrap();
        assert_eq!(tree.num_items(), 0);
        assert_eq!(tree.nodes(), 1);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn stream_and_memory_loading_agree_on_shape() {
        let mut env = env();
        let items = grid_items(30);
        let from_memory = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        let stream = ItemStream::from_items(&mut env, &items).unwrap();
        let from_stream = bulk_load_stream(&mut env, &stream, BulkLoadConfig::default()).unwrap();
        assert_eq!(from_memory.num_items(), from_stream.num_items());
        assert_eq!(from_memory.num_leaves(), from_stream.num_leaves());
        assert_eq!(from_memory.height(), from_stream.height());
    }

    #[test]
    fn children_are_allocated_sequentially() {
        // The defining layout property: leaves are written to consecutive
        // pages, so reading them in construction order is sequential I/O.
        let mut env = env();
        let items = grid_items(40);
        let before = env.device.allocated_pages();
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        let after = env.device.allocated_pages();
        assert_eq!(after - before, tree.nodes());
        // The root is the last node written.
        assert_eq!(tree.root(), after - 1);
    }

    #[test]
    fn bounding_box_of_nothing_is_unit_square() {
        let bbox = bounding_box(std::iter::empty());
        assert_eq!(bbox, Rect::from_coords(0.0, 0.0, 1.0, 1.0));
    }
}
