//! Property-based tests on the in-tree `usj_proptest` harness: a bulk-loaded
//! tree must answer every window query exactly like a brute-force scan,
//! regardless of the data distribution.

use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};

use crate::bulk::{bulk_load, BulkLoadConfig};

fn arb_items(g: &mut Gen, max_len: usize) -> Vec<Item> {
    let mut next = 0u32;
    g.vec(0, max_len, |g| {
        let x = g.f32_in(-1000.0, 1000.0);
        let y = g.f32_in(-1000.0, 1000.0);
        let w = g.f32_in(0.0, 50.0);
        let h = g.f32_in(0.0, 50.0);
        let id = next;
        next += 1;
        Item::new(Rect::from_coords(x, y, x + w, y + h), id)
    })
}

fn arb_window(g: &mut Gen) -> Rect {
    let x = g.f32_in(-1200.0, 1200.0);
    let y = g.f32_in(-1200.0, 1200.0);
    let w = g.f32_in(0.0, 800.0);
    let h = g.f32_in(0.0, 800.0);
    Rect::from_coords(x, y, x + w, y + h)
}

#[test]
fn window_query_equals_brute_force() {
    forall!(48, |g| {
        let items = arb_items(g, 600);
        let window = arb_window(g);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        let mut got: Vec<u32> = tree
            .window_query(&mut env, &window)
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|it| it.rect.intersects(&window))
            .map(|it| it.id)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn every_item_is_reachable() {
    forall!(48, |g| {
        let items = arb_items(g, 500);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        assert_eq!(tree.num_items(), items.len() as u64);
        let mut got: Vec<u32> = tree
            .window_query(&mut env, &tree.bbox())
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = items.iter().map(|it| it.id).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    });
}

#[test]
fn node_counts_are_within_fanout_bounds() {
    forall!(48, |g| {
        let items = arb_items(g, 800);
        if items.is_empty() {
            return;
        }
        let mut env = SimEnv::new(MachineConfig::machine3());
        let cfg = BulkLoadConfig::default();
        let tree = bulk_load(&mut env, &items, cfg).unwrap();
        // Leaves hold between fill_target (except the last) and max_fanout
        // items, so the leaf count is bounded both ways.
        let max_leaves = items.len().div_ceil(1).max(1) as u64;
        assert!(tree.num_leaves() <= max_leaves);
        let min_leaves = (items.len() as u64).div_ceil(cfg.max_fanout as u64);
        assert!(tree.num_leaves() >= min_leaves);
        assert!(tree.height() >= 1);
    });
}
