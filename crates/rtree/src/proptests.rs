//! Property-based tests: a bulk-loaded tree must answer every window query
//! exactly like a brute-force scan, regardless of the data distribution.

use proptest::prelude::*;
use usj_geom::{Item, Rect};
use usj_io::{MachineConfig, SimEnv};

use crate::bulk::{bulk_load, BulkLoadConfig};

fn arb_items(max_len: usize) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        (
            -1000.0f32..1000.0,
            -1000.0f32..1000.0,
            0.0f32..50.0,
            0.0f32..50.0,
        ),
        0..max_len,
    )
    .prop_map(|v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| Item::new(Rect::from_coords(x, y, x + w, y + h), i as u32))
            .collect()
    })
}

fn arb_window() -> impl Strategy<Value = Rect> {
    (
        -1200.0f32..1200.0,
        -1200.0f32..1200.0,
        0.0f32..800.0,
        0.0f32..800.0,
    )
        .prop_map(|(x, y, w, h)| Rect::from_coords(x, y, x + w, y + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn window_query_equals_brute_force(items in arb_items(600), window in arb_window()) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        let mut got: Vec<u32> = tree
            .window_query(&mut env, &window)
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = items
            .iter()
            .filter(|it| it.rect.intersects(&window))
            .map(|it| it.id)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn every_item_is_reachable(items in arb_items(500)) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let tree = bulk_load(&mut env, &items, BulkLoadConfig::default()).unwrap();
        prop_assert_eq!(tree.num_items(), items.len() as u64);
        let mut got: Vec<u32> = tree
            .window_query(&mut env, &tree.bbox())
            .unwrap()
            .iter()
            .map(|it| it.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u32> = items.iter().map(|it| it.id).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn node_counts_are_within_fanout_bounds(items in arb_items(800)) {
        prop_assume!(!items.is_empty());
        let mut env = SimEnv::new(MachineConfig::machine3());
        let cfg = BulkLoadConfig::default();
        let tree = bulk_load(&mut env, &items, cfg).unwrap();
        // Leaves hold between fill_target (except the last) and max_fanout
        // items, so the leaf count is bounded both ways.
        let max_leaves = items.len().div_ceil(1).max(1) as u64;
        prop_assert!(tree.num_leaves() <= max_leaves);
        let min_leaves = (items.len() as u64).div_ceil(cfg.max_fanout as u64);
        prop_assert!(tree.num_leaves() >= min_leaves);
        prop_assert!(tree.height() >= 1);
    }
}
