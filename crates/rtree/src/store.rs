//! The buffer-pool-backed node store.
//!
//! Every R-tree read path originally decoded nodes straight off the device
//! ([`RTree::read_node`](crate::RTree::read_node)) or through an ad-hoc
//! [`LruBufferPool`] owned by the ST join. A [`NodeStore`] packages the pool and the decode step into one
//! reusable component: a page-addressable node cache that any traversal —
//! the ST join, window and point selection queries, the catalog's repeated
//! service queries — reads through. Hits cost nothing; misses are one page
//! request on the device and show up in the I/O statistics, exactly like the
//! paper's 22 MB ST pool.
//!
//! A store can be *governed*: created against a [`MemoryGauge`], its resident
//! pages are charged to the environment's memory budget and shed under
//! pressure instead of overcommitting (see
//! [`LruBufferPool::with_capacity_bytes_gauged`]).

use usj_io::{CpuOp, LruBufferPool, MemoryGauge, PageId, Result, SimEnv};

use crate::node::Node;

/// A buffer-pool-backed, page-addressable R-tree node cache.
#[derive(Debug)]
pub struct NodeStore {
    pool: LruBufferPool,
}

impl NodeStore {
    /// Creates a store holding at most `bytes` of resident node pages
    /// (rounded down to whole pages, at least one).
    pub fn with_capacity_bytes(bytes: usize) -> Self {
        NodeStore {
            pool: LruBufferPool::with_capacity_bytes(bytes),
        }
    }

    /// Creates a store whose resident pages are charged to `gauge`; the
    /// capacity is clamped to the gauge's current headroom, so an oversized
    /// configuration degrades to more page requests instead of overcommitting
    /// the memory budget.
    pub fn with_capacity_bytes_gauged(bytes: usize, gauge: &MemoryGauge) -> Self {
        NodeStore {
            pool: LruBufferPool::with_capacity_bytes_gauged(bytes, gauge),
        }
    }

    /// Reads and decodes one node through the pool.
    pub fn read(&mut self, env: &mut SimEnv, page: PageId) -> Result<Node> {
        let bytes = self.pool.get(&mut env.device, page)?;
        let node = Node::decode(&bytes)?;
        env.charge(CpuOp::ItemMove, node.len() as u64);
        Ok(node)
    }

    /// Hit/miss/eviction statistics of the underlying pool. The `misses`
    /// counter is the traversal's *page request* count (Table 4).
    pub fn stats(&self) -> usj_io::buffer::BufferPoolStats {
        self.pool.stats()
    }

    /// Number of node pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.pool.resident_pages()
    }

    /// Maximum number of resident node pages.
    pub fn capacity_pages(&self) -> usize {
        self.pool.capacity_pages()
    }

    /// Empties the store (statistics are kept, gauge bytes released).
    pub fn clear(&mut self) {
        self.pool.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTree;
    use usj_geom::{Item, Rect};
    use usj_io::{MachineConfig, PAGE_SIZE};

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let (x, y) = ((i % 40) as f32, (i / 40) as f32);
                Item::new(Rect::from_coords(x, y, x + 0.8, y + 0.8), i)
            })
            .collect()
    }

    #[test]
    fn repeated_reads_hit_the_store() {
        let mut env = env();
        let tree = RTree::bulk_load(&mut env, &items(2000)).unwrap();
        let mut store = NodeStore::with_capacity_bytes(64 * PAGE_SIZE);
        env.device.reset_stats();
        for _ in 0..3 {
            let _ = store.read(&mut env, tree.root()).unwrap();
        }
        assert_eq!(env.device.stats().pages_read, 1);
        assert_eq!(store.stats().hits, 2);
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn gauged_store_respects_the_memory_budget() {
        let mut env = env().with_memory_limit(4 * PAGE_SIZE);
        let tree = RTree::bulk_load(&mut env, &items(4000)).unwrap();
        assert!(tree.nodes() > 8, "tree must span more pages than the budget");
        let mut store = NodeStore::with_capacity_bytes_gauged(1 << 20, &env.memory);
        assert!(store.capacity_pages() <= 4);
        let first = tree.root() + 1 - tree.nodes();
        for page in first..=tree.root() {
            let _ = store.read(&mut env, page).unwrap();
            assert!(env.memory.current() <= 4 * PAGE_SIZE);
        }
        assert!(store.stats().evictions > 0, "a starved store must evict");
        store.clear();
        assert_eq!(env.memory.current(), 0);
    }
}
