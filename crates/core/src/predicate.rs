//! Join predicates, pluggable into every algorithm.
//!
//! The paper's filter step joins on MBR *intersection*. Real query engines
//! also ask for distance joins ("every hydrography feature within ε of a
//! road") and containment joins. Both reduce to the same plane-sweep
//! machinery:
//!
//! * [`Predicate::WithinDistance`] is implemented by **ε-expansion**: every
//!   left rectangle is grown by ε on all sides before it enters the sweep (or
//!   the R-tree traversal), so the ordinary intersection test then reports
//!   exactly the pairs whose Chebyshev (L∞) distance is at most ε. The
//!   expansion shifts every left sort key by the same constant, which
//!   preserves the sorted order the sweep relies on — this is why *all four*
//!   algorithms support the predicate without structural changes.
//! * [`Predicate::Contains`] is a **refinement** of intersection: the sweep
//!   reports intersecting candidates and the pair is emitted only when the
//!   left rectangle fully contains the right one. (Containment implies
//!   intersection, so no candidate is missed; the refinement must only be
//!   applied to data rectangles, never to directory rectangles.)

use usj_geom::{Item, Rect};

/// The pair-selection predicate of a spatial join.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Predicate {
    /// MBRs overlap (closed-rectangle semantics, the paper's filter step).
    #[default]
    Intersects,
    /// The Chebyshev (L∞) distance between the MBRs is at most ε — the
    /// rectangle-filter form of an ε-distance join. Negative values are
    /// treated as zero.
    WithinDistance(f32),
    /// The left MBR fully contains the right MBR (closed sense).
    Contains,
}

impl Predicate {
    /// The ε-expansion this predicate applies to the left input
    /// (zero for everything but [`Predicate::WithinDistance`]).
    #[inline]
    pub fn epsilon(&self) -> f32 {
        match self {
            Predicate::WithinDistance(eps) => eps.max(0.0),
            _ => 0.0,
        }
    }

    /// Expands a left-input item by the predicate's ε.
    #[inline]
    pub(crate) fn expand_left(&self, item: Item) -> Item {
        let eps = self.epsilon();
        if eps == 0.0 {
            item
        } else {
            Item::new(item.rect.expanded(eps), item.id)
        }
    }

    /// Expands a rectangle used to *prune against the left input's partners*
    /// (subtree pruning, traversal restriction) by the predicate's ε.
    #[inline]
    pub(crate) fn expand_rect(&self, rect: Rect) -> Rect {
        rect.expanded(self.epsilon())
    }

    /// Refines a candidate pair whose (possibly ε-expanded) left rectangle
    /// intersects the right rectangle. Returns `true` when the pair
    /// satisfies the predicate and must be emitted.
    #[inline]
    pub fn accepts(&self, left: &Rect, right: &Rect) -> bool {
        match self {
            // The sweep/traversal already established (expanded)
            // intersection, which *is* the predicate for these two.
            Predicate::Intersects | Predicate::WithinDistance(_) => true,
            Predicate::Contains => left.contains(right),
        }
    }

    /// Evaluates the predicate from scratch on two unexpanded rectangles
    /// (used by brute-force oracles and tests).
    pub fn matches(&self, left: &Rect, right: &Rect) -> bool {
        match self {
            Predicate::Intersects => left.intersects(right),
            Predicate::WithinDistance(_) => left.expanded(self.epsilon()).intersects(right),
            Predicate::Contains => left.contains(right),
        }
    }

    /// Short display name used in plans and reports.
    pub fn name(&self) -> &'static str {
        match self {
            Predicate::Intersects => "intersects",
            Predicate::WithinDistance(_) => "within-distance",
            Predicate::Contains => "contains",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_is_zero_except_for_distance() {
        assert_eq!(Predicate::Intersects.epsilon(), 0.0);
        assert_eq!(Predicate::Contains.epsilon(), 0.0);
        assert_eq!(Predicate::WithinDistance(2.5).epsilon(), 2.5);
        assert_eq!(Predicate::WithinDistance(-1.0).epsilon(), 0.0);
    }

    #[test]
    fn matches_agrees_with_rectangle_semantics() {
        let a = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let b = Rect::from_coords(2.0, 0.0, 3.0, 1.0);
        let inner = Rect::from_coords(0.25, 0.25, 0.75, 0.75);
        assert!(!Predicate::Intersects.matches(&a, &b));
        assert!(Predicate::WithinDistance(1.0).matches(&a, &b));
        assert!(!Predicate::WithinDistance(0.5).matches(&a, &b));
        assert!(Predicate::Contains.matches(&a, &inner));
        assert!(!Predicate::Contains.matches(&inner, &a));
    }

    #[test]
    fn contains_refinement_only_accepts_contained_pairs() {
        let outer = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        let inner = Rect::from_coords(1.0, 1.0, 2.0, 2.0);
        let crossing = Rect::from_coords(3.0, 3.0, 5.0, 5.0);
        assert!(Predicate::Contains.accepts(&outer, &inner));
        assert!(!Predicate::Contains.accepts(&outer, &crossing));
        assert!(Predicate::Intersects.accepts(&outer, &crossing));
    }
}
