//! The parallel partitioned join executor.
//!
//! All four joins of the paper run single-threaded over one simulated disk.
//! This module adds the first step towards the sharded architecture the
//! roadmap calls for: both inputs are split into `K` *spatial shards*, the
//! shards are fanned out across a pool of `std::thread` workers, and every
//! worker runs an ordinary serial [`JoinOperator`] (PQ, PBSM, SSSJ or ST)
//! against its own private [`SimEnv`] obtained with [`SimEnv::fork`] — its
//! own simulated disk, its own I/O and CPU counters.
//!
//! Three pieces make the result exactly equal to a serial execution:
//!
//! 1. **Replication.** A [`Partitioner`] builds a [`ShardMap`]: a grid of
//!    cells over the data space with every cell owned by one shard. Each
//!    rectangle is replicated into every shard owning a cell it overlaps, so
//!    any intersecting pair is guaranteed to meet in at least one shard.
//! 2. **Reference-point deduplication.** A pair may meet in several shards;
//!    it is reported only by the shard owning the cell that contains the
//!    pair's *reference point* (the lower-left corner of the intersection —
//!    the same trick PBSM uses for its tiles, lifted to the shard level).
//! 3. **Accounting roll-up.** Every worker's I/O and CPU deltas are merged
//!    into one [`JoinResult`] with [`JoinResult::merge`], so the aggregate
//!    accounting equals the sum of its parts; [`ParallelJoin::run_detailed`]
//!    additionally exposes the per-shard breakdown.
//!
//! Two partitioning strategies are provided: [`TilePartitioner`] assigns
//! grid cells to shards round-robin (PBSM-style, good load balance, no
//! locality) and [`HilbertPartitioner`] assigns contiguous runs of the
//! Hilbert-ordered cells (spatially coherent shards, the same ordering the
//! R-tree bulk loader uses).

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use usj_geom::{hilbert, Item, Rect};
use usj_io::{CpuOp, ItemStream, Result, SimEnv};
use usj_rtree::RTree;

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::JoinResult;
use crate::sink::PairSink;
use crate::JoinOperator;

/// Default number of grid cells per axis used by both partitioners.
///
/// 64 × 64 cells keeps the cell-to-shard table tiny while still giving the
/// Hilbert partitioner enough resolution to form coherent shards; rectangles
/// large enough to span many cells are replicated, exactly as in PBSM.
pub const DEFAULT_CELLS_PER_SIDE: usize = 64;

/// Splits the data space into `K` spatial shards for the parallel executor.
///
/// Implementations only decide *which shard owns which grid cell*; the
/// replication and deduplication machinery is shared and lives in
/// [`ShardMap`].
pub trait Partitioner {
    /// Human-readable strategy name (used in logs and benches).
    fn name(&self) -> &'static str;

    /// Builds the cell-to-shard map for `shards` shards over `region`.
    fn build(&self, region: Rect, shards: usize) -> ShardMap;
}

/// A grid over the data space with every cell assigned to one shard.
///
/// The map answers two questions: into which shards must a rectangle be
/// replicated ([`ShardMap::shards_of_rect`]), and which single shard owns a
/// point ([`ShardMap::shard_of_point`] — used for the reference-point
/// deduplication test).
#[derive(Debug, Clone)]
pub struct ShardMap {
    region: Rect,
    cells_per_side: usize,
    shards: usize,
    /// Row-major cell index → owning shard.
    cell_to_shard: Vec<u32>,
}

impl ShardMap {
    /// Creates a map from an explicit cell-ownership table.
    ///
    /// # Panics
    ///
    /// Panics unless `cell_to_shard` has `cells_per_side²` entries, every
    /// entry is smaller than `shards`, and `shards > 0`.
    pub fn new(
        region: Rect,
        cells_per_side: usize,
        shards: usize,
        cell_to_shard: Vec<u32>,
    ) -> Self {
        assert!(shards > 0, "at least one shard is required");
        assert_eq!(
            cell_to_shard.len(),
            cells_per_side * cells_per_side,
            "ownership table must cover the whole grid"
        );
        assert!(
            cell_to_shard.iter().all(|&s| (s as usize) < shards),
            "cell owned by an out-of-range shard"
        );
        ShardMap {
            region,
            cells_per_side,
            shards,
            cell_to_shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Grid resolution (cells per axis).
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// The data-space region the grid covers.
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Row-major index of the grid cell containing `(x, y)`; coordinates
    /// outside the region are clamped onto the border cells.
    pub fn cell_of(&self, x: f32, y: f32) -> usize {
        let n = self.cells_per_side;
        let w = self.region.width().max(f32::MIN_POSITIVE);
        let h = self.region.height().max(f32::MIN_POSITIVE);
        let cx = (((x - self.region.lo.x) / w) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        let cy = (((y - self.region.lo.y) / h) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        cy * n + cx
    }

    /// The shard owning the cell that contains `(x, y)`.
    pub fn shard_of_point(&self, x: f32, y: f32) -> usize {
        self.cell_to_shard[self.cell_of(x, y)] as usize
    }

    /// Collects into `out` the distinct shards owning any cell overlapped by
    /// `r` — the shards `r` must be replicated into.
    pub fn shards_of_rect(&self, r: &Rect, out: &mut Vec<usize>) {
        out.clear();
        let n = self.cells_per_side;
        let lo = self.cell_of(r.lo.x, r.lo.y);
        let hi = self.cell_of(r.hi.x, r.hi.y);
        let (cx0, cy0) = (lo % n, lo / n);
        let (cx1, cy1) = (hi % n, hi / n);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let s = self.cell_to_shard[cy * n + cx] as usize;
                if !out.contains(&s) {
                    out.push(s);
                    if out.len() == self.shards {
                        return;
                    }
                }
            }
        }
    }
}

/// PBSM-style sharding: grid cells are dealt to shards round-robin.
///
/// Neighbouring cells land on different shards, which spreads any local
/// hot-spot evenly (good load balance) at the price of replicating every
/// rectangle that spans a cell boundary into several shards.
#[derive(Debug, Clone, Copy)]
pub struct TilePartitioner {
    /// Grid resolution (cells per axis).
    pub cells_per_side: usize,
}

impl Default for TilePartitioner {
    fn default() -> Self {
        TilePartitioner {
            cells_per_side: DEFAULT_CELLS_PER_SIDE,
        }
    }
}

impl Partitioner for TilePartitioner {
    fn name(&self) -> &'static str {
        "tile"
    }

    fn build(&self, region: Rect, shards: usize) -> ShardMap {
        let n = self.cells_per_side.max(1);
        let cells = (0..n * n).map(|c| (c % shards.max(1)) as u32).collect();
        ShardMap::new(region, n, shards.max(1), cells)
    }
}

/// Hilbert-range sharding: the grid cells are ordered along a Hilbert curve
/// and split into `K` contiguous runs of equal length.
///
/// Each shard is a spatially coherent blob (the Hilbert curve's locality),
/// so only rectangles near shard borders are replicated — the same ordering
/// that gives the bulk-loaded R-trees their clustering, reused as a sharding
/// key.
#[derive(Debug, Clone, Copy)]
pub struct HilbertPartitioner {
    /// Grid resolution (cells per axis); rounded up to a power of two for
    /// the Hilbert ordering.
    pub cells_per_side: usize,
}

impl Default for HilbertPartitioner {
    fn default() -> Self {
        HilbertPartitioner {
            cells_per_side: DEFAULT_CELLS_PER_SIDE,
        }
    }
}

impl Partitioner for HilbertPartitioner {
    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn build(&self, region: Rect, shards: usize) -> ShardMap {
        let shards = shards.max(1);
        let n = self.cells_per_side.max(2).next_power_of_two();
        let total = n * n;
        // Rank every cell along the coarse Hilbert curve, then cut the rank
        // sequence into `shards` equal runs.
        let mut by_rank: Vec<(u64, usize)> = (0..total)
            .map(|c| {
                let (cx, cy) = (c % n, c / n);
                (
                    hilbert::xy_to_hilbert_on_side(n as u32, cx as u32, cy as u32),
                    c,
                )
            })
            .collect();
        by_rank.sort_unstable();
        let run = total.div_ceil(shards);
        let mut cells = vec![0u32; total];
        for (rank, &(_, cell)) in by_rank.iter().enumerate() {
            cells[cell] = ((rank / run).min(shards - 1)) as u32;
        }
        ShardMap::new(region, n, shards, cells)
    }
}

/// Outcome of one [`ParallelJoin::run_detailed`] execution.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// The merged, externally visible result — what
    /// [`JoinOperator::run_with`] returns.
    pub total: JoinResult,
    /// The coordinator's own share: reading the inputs and scattering the
    /// shards (its `pairs` is always zero).
    pub coordinator: JoinResult,
    /// One result per shard, in shard order, measured on that shard's forked
    /// environment. `total` equals `coordinator` merged with every entry.
    pub shards: Vec<JoinResult>,
}

/// A partition-parallel executor wrapping any serial [`JoinOperator`].
///
/// See the [module documentation](self) for the partitioning and
/// deduplication scheme. The executor is itself a [`JoinOperator`], so it
/// composes with everything that accepts one (the experiment harness, the
/// cost-based selector's plan runners, the query builder, …). The inner
/// operator's [`predicate`](JoinOperator::predicate) is honoured: its
/// ε-expansion is applied to the replication and deduplication geometry, so
/// distance joins shard exactly like intersection joins.
///
/// The executor reports exactly the serial algorithms' *pair set*, in an
/// order that is deterministic (shards are drained in shard order) but
/// generally different from a serial sweep's emission order.
///
/// **Precondition:** object identifiers must be unique *within each input*
/// (as in all the paper's data files, where the id is the record's key).
/// The reference-point deduplication looks rectangles up by id, so two
/// distinct rectangles sharing an id within one input would dedup against
/// the wrong geometry; this is debug-asserted per shard.
///
/// # Example
///
/// ```
/// use usj_core::parallel::{HilbertPartitioner, ParallelJoin};
/// use usj_core::{JoinInput, JoinOperator, PqJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// // A 10x10 grid of unit squares against four long horizontal slabs.
/// let grid: Vec<Item> = (0..100)
///     .map(|i| {
///         let (x, y) = ((i % 10) as f32, (i / 10) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.8, y + 0.8), i)
///     })
///     .collect();
/// let slabs: Vec<Item> = (0..4)
///     .map(|i| Item::new(Rect::from_coords(0.0, 2.5 * i as f32, 10.0, 2.5 * i as f32 + 0.5), 1000 + i))
///     .collect();
/// let left = ItemStream::from_items(&mut env, &grid).unwrap();
/// let right = ItemStream::from_items(&mut env, &slabs).unwrap();
///
/// let parallel = ParallelJoin::new(PqJoin::default(), HilbertPartitioner::default())
///     .with_threads(4)
///     .with_shards(4);
/// let result = parallel
///     .run(&mut env, JoinInput::Stream(&left), JoinInput::Stream(&right))
///     .unwrap();
///
/// // The parallel pair count equals the serial one.
/// let serial = PqJoin::default()
///     .run(&mut env, JoinInput::Stream(&left), JoinInput::Stream(&right))
///     .unwrap();
/// assert_eq!(result.pairs, serial.pairs);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelJoin<J, P> {
    inner: J,
    partitioner: P,
    threads: usize,
    shards: usize,
    region_hint: Option<Rect>,
    index_shards: bool,
}

impl<J: JoinOperator + Sync, P: Partitioner> ParallelJoin<J, P> {
    /// Wraps `inner` with `partitioner`, defaulting to one shard and one
    /// worker thread per available CPU (at most 8 by default — raise it
    /// explicitly for wider machines).
    pub fn new(inner: J, partitioner: P) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ParallelJoin {
            inner,
            partitioner,
            threads,
            shards: threads,
            region_hint: None,
            index_shards: false,
        }
    }

    /// Sets the worker-thread count (builder style). The thread count never
    /// affects the reported pairs or their order — only wall-clock time.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the shard count independently of the thread count (builder
    /// style). More shards than threads gives the work queue slack to
    /// balance skewed data.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Provides the data-space bounding box, skipping the discovery scan
    /// (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Makes every worker bulk-load packed R-trees over its shard and hand
    /// the inner join indexed inputs (builder style). Required for inner
    /// joins that are only meaningful on indexes (ST); index construction is
    /// unaccounted, mirroring how the serial experiments prepare indexes.
    pub fn with_indexed_shards(mut self) -> Self {
        self.index_shards = true;
        self
    }

    /// Configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Configured shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Runs the join and returns the per-shard accounting breakdown along
    /// with the merged total. [`JoinOperator::run_with`] is a thin wrapper
    /// over this method.
    pub fn run_detailed(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<ParallelRun> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let eps = self.inner.predicate().epsilon();

        let left_stream = left.to_stream(env)?;
        let right_stream = right.to_stream(env)?;

        // Data-space bounding box: the hint if given; otherwise union the
        // indexes' known root rectangles and scan only the sides whose
        // extent is unknown (the same policy as PBSM, minus redundant
        // passes over indexed inputs).
        let region = match self.region_hint {
            Some(r) => r,
            None => {
                let mut bbox = Rect::empty();
                for (input, stream) in [(&left, &left_stream), (&right, &right_stream)] {
                    match input.known_bbox() {
                        Some(b) => bbox = bbox.union(&b),
                        None => {
                            let mut r = stream.reader();
                            while let Some(it) = r.next(env)? {
                                env.charge(CpuOp::RectTest, 1);
                                bbox = bbox.union(&it.rect);
                            }
                        }
                    }
                }
                if bbox.is_empty() {
                    Rect::from_coords(0.0, 0.0, 1.0, 1.0)
                } else {
                    bbox
                }
            }
        };

        let map = self.partitioner.build(region, self.shards);
        let shards = map.shards();

        // Scatter both inputs into per-shard buffers, replicating every
        // rectangle into each shard whose cells it overlaps. Left rectangles
        // are *targeted* with their ε-expansion (so near-miss partners of a
        // distance join meet in at least one shard) but stored unexpanded —
        // the inner operator applies its own predicate expansion.
        // The coordinator's scatter buffers are a real working set and are
        // claimed from its memory gauge (a dataset whose replicated scatter
        // exceeds the coordinator's memory fails loudly instead of silently
        // overcommitting).
        let mut scatter_claim = env.memory.reserve_empty();
        let mut scatter =
            |env: &mut SimEnv, stream: &ItemStream, expand: f32| -> Result<Vec<Vec<Item>>> {
                let mut parts: Vec<Vec<Item>> = vec![Vec::new(); shards];
                let mut reader = stream.reader();
                let mut targets = Vec::with_capacity(4);
                while let Some(it) = reader.next(env)? {
                    map.shards_of_rect(&it.rect.expanded(expand), &mut targets);
                    env.charge(CpuOp::ItemMove, targets.len() as u64);
                    scatter_claim.try_grow(targets.len() * std::mem::size_of::<Item>())?;
                    for &p in &targets {
                        parts[p].push(it);
                    }
                }
                Ok(parts)
            };
        let shard_left = scatter(env, &left_stream, eps)?;
        let shard_right = scatter(env, &right_stream, 0.0)?;

        // Coordinator accounting closes here: reading the inputs plus the
        // scatter CPU work. The in-memory scatter buffers are its working
        // set.
        let (io, cpu) = env.since(&measurement);
        let mut coordinator = JoinResult {
            io,
            cpu,
            ..JoinResult::default()
        };
        coordinator.memory.other_bytes = shard_left
            .iter()
            .chain(shard_right.iter())
            .map(|v| v.len() * std::mem::size_of::<Item>())
            .sum();
        coordinator.memory.peak_bytes = env.memory.peak();

        // Fan the shards out over the worker pool. Each worker pulls shard
        // indices from a shared queue and runs every shard on a fresh fork
        // of the coordinator's environment.
        let threads = self.threads.min(shards).max(1);
        let queue = AtomicUsize::new(0);
        let slots: Vec<ShardSlot> = (0..shards).map(|_| Mutex::new(None)).collect();
        let env_ref: &SimEnv = env;
        let map_ref = &map;
        let inner = &self.inner;
        let index_shards = self.index_shards;
        let shard_left_ref = &shard_left;
        let shard_right_ref = &shard_right;
        let slots_ref = &slots;
        let queue_ref = &queue;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(move || loop {
                    let i = queue_ref.fetch_add(1, Ordering::Relaxed);
                    if i >= shards {
                        break;
                    }
                    let outcome = run_shard(
                        env_ref.fork(),
                        inner,
                        &shard_left_ref[i],
                        &shard_right_ref[i],
                        map_ref,
                        i,
                        index_shards,
                        eps,
                    );
                    *slots_ref[i].lock().unwrap() = Some(outcome);
                });
            }
        });

        // Merge in shard order, so the report — and the order pairs reach
        // the sink — is deterministic regardless of the thread count. When
        // the sink stops the drain early, the shard work is already done (the
        // accounting still rolls up completely) but only the delivered pairs
        // are counted.
        let mut total = coordinator.clone();
        let mut shard_results = Vec::with_capacity(shards);
        let mut delivered = 0u64;
        let mut done = false;
        for slot in slots {
            let (result, pairs) = slot
                .into_inner()
                .expect("worker poisoned a result slot")
                .expect("worker exited without reporting its shard")?;
            for &(a, b) in &pairs {
                if done {
                    break;
                }
                if sink.emit(a, b).is_break() {
                    done = true;
                } else {
                    delivered += 1;
                }
            }
            total.merge(&result);
            shard_results.push(result);
        }
        total.pairs = delivered;
        total.sweep.pairs = delivered;
        Ok(ParallelRun {
            total,
            coordinator,
            shards: shard_results,
        })
    }
}

/// One shard's outcome slot, filled by whichever worker claims the shard.
type ShardSlot = Mutex<Option<Result<(JoinResult, Vec<(u32, u32)>)>>>;

/// Joins one shard on its own forked environment, returning the shard's
/// accounting and its deduplicated pairs.
#[allow(clippy::too_many_arguments)]
fn run_shard<J: JoinOperator>(
    mut wenv: SimEnv,
    inner: &J,
    left_items: &[Item],
    right_items: &[Item],
    map: &ShardMap,
    shard: usize,
    index_shards: bool,
    eps: f32,
) -> Result<(JoinResult, Vec<(u32, u32)>)> {
    let mut pairs = Vec::new();
    if left_items.is_empty() || right_items.is_empty() {
        return Ok((JoinResult::default(), pairs));
    }
    let measurement = wenv.begin();

    // Rectangle lookup for the reference-point ownership test. Ids must be
    // unique within each input (see the `ParallelJoin` docs) or the lookup
    // would resolve to the wrong geometry. The maps are part of the worker's
    // working set (~2× an entry per item with hashing overhead).
    let _dedup_claim = wenv.memory.try_reserve(
        (left_items.len() + right_items.len())
            * 2
            * std::mem::size_of::<(u32, Rect)>(),
    )?;
    let left_rects: HashMap<u32, Rect> = left_items.iter().map(|it| (it.id, it.rect)).collect();
    let right_rects: HashMap<u32, Rect> = right_items.iter().map(|it| (it.id, it.rect)).collect();
    debug_assert_eq!(left_rects.len(), left_items.len(), "duplicate ids in the left input");
    debug_assert_eq!(right_rects.len(), right_items.len(), "duplicate ids in the right input");
    let mut dedup_sink = |a: u32, b: u32| {
        // The same ε-expanded geometry the scatter used for replication.
        let ra = left_rects[&a].expanded(eps);
        let rb = &right_rects[&b];
        // Reference point: the lower-left corner of the intersection. It
        // lies inside both (expanded) rectangles, so the shard owning its
        // cell has both replicas and reports the pair — exactly once across
        // all shards.
        let ref_x = ra.lo.x.max(rb.lo.x);
        let ref_y = ra.lo.y.max(rb.lo.y);
        if map.shard_of_point(ref_x, ref_y) == shard {
            pairs.push((a, b));
        }
    };

    let mut result = if index_shards {
        // Index construction is preprocessing, unaccounted like the serial
        // experiments' index builds.
        let left_tree = wenv.unaccounted(|e| RTree::bulk_load(e, left_items))?;
        let right_tree = wenv.unaccounted(|e| RTree::bulk_load(e, right_items))?;
        inner.run_with(
            &mut wenv,
            JoinInput::Indexed(&left_tree),
            JoinInput::Indexed(&right_tree),
            &mut dedup_sink,
        )?
    } else {
        // Materialising the shard streams on the worker's disk is the
        // scatter write a real partitioned system would pay; it is charged
        // to the worker.
        let left_stream = ItemStream::from_items(&mut wenv, left_items)?;
        let right_stream = ItemStream::from_items(&mut wenv, right_items)?;
        inner.run_with(
            &mut wenv,
            JoinInput::Stream(&left_stream),
            JoinInput::Stream(&right_stream),
            &mut dedup_sink,
        )?
    };

    // The shard's accounting covers everything that happened on the forked
    // environment (stream materialisation + the inner join), and its pair
    // count is the deduplicated one.
    let (io, cpu) = wenv.since(&measurement);
    result.io = io;
    result.cpu = cpu;
    result.pairs = pairs.len() as u64;
    result.sweep.pairs = result.pairs;
    // The worker's measured peak covers the dedup maps and shard streams in
    // addition to whatever the inner join reported on this gauge.
    result.memory.peak_bytes = result.memory.peak_bytes.max(wenv.memory.peak());
    Ok((result, pairs))
}

impl<J: JoinOperator + Sync, P: Partitioner> JoinOperator for ParallelJoin<J, P> {
    fn name(&self) -> &'static str {
        "Parallel"
    }

    fn predicate(&self) -> Predicate {
        self.inner.predicate()
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        Ok(self.run_detailed(env, left, right, sink)?.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PbsmJoin, PqJoin, SssjJoin, StJoin};
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    /// Long horizontal and vertical crossers: every pair of shards shares
    /// replicated rectangles, stressing the deduplication.
    fn crossers(n: u32) -> (Vec<Item>, Vec<Item>) {
        let horiz = (0..n)
            .map(|i| Item::new(Rect::from_coords(0.0, i as f32, n as f32, i as f32 + 0.1), i))
            .collect();
        let vert = (0..n)
            .map(|i| {
                Item::new(
                    Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, n as f32),
                    1000 + i,
                )
            })
            .collect();
        (horiz, vert)
    }

    fn sorted(mut v: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
        v.sort_unstable();
        v
    }

    #[test]
    fn shard_maps_cover_every_cell_with_valid_shards() {
        let region = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        for shards in [1usize, 2, 5, 16] {
            for map in [
                TilePartitioner::default().build(region, shards),
                HilbertPartitioner::default().build(region, shards),
            ] {
                assert_eq!(map.shards(), shards);
                let n = map.cells_per_side();
                let mut seen = vec![false; shards];
                for cy in 0..n {
                    for cx in 0..n {
                        let x = 10.0 * (cx as f32 + 0.5) / n as f32;
                        let y = 10.0 * (cy as f32 + 0.5) / n as f32;
                        seen[map.shard_of_point(x, y)] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "a shard owns no cell");
            }
        }
    }

    #[test]
    fn hilbert_shards_are_contiguous_runs() {
        let region = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
        let map = HilbertPartitioner { cells_per_side: 8 }.build(region, 4);
        // Walking the curve, the shard id must be non-decreasing.
        let mut last = 0usize;
        let n = map.cells_per_side();
        let mut ranked: Vec<(u64, usize)> = (0..n * n)
            .map(|c| {
                let (cx, cy) = (c % n, c / n);
                (
                    hilbert::xy_to_hilbert_on_side(n as u32, cx as u32, cy as u32),
                    c,
                )
            })
            .collect();
        ranked.sort_unstable();
        for (_, cell) in ranked {
            let s = map.cell_to_shard[cell] as usize;
            assert!(s >= last, "shard ids must be contiguous along the curve");
            last = s;
        }
        assert_eq!(last, 3, "all four shards used");
    }

    #[test]
    fn replication_targets_include_the_reference_cell_owner() {
        let region = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let map = HilbertPartitioner::default().build(region, 7);
        let r = Rect::from_coords(12.3, 40.0, 57.9, 44.5);
        let mut targets = Vec::new();
        map.shards_of_rect(&r, &mut targets);
        assert!(targets.contains(&map.shard_of_point(r.lo.x, r.lo.y)));
        assert!(targets.contains(&map.shard_of_point(r.hi.x, r.hi.y)));
    }

    #[test]
    fn parallel_matches_serial_on_crossers_for_both_partitioners() {
        let (h, v) = crossers(30);
        let mut e = env();
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let sv = ItemStream::from_items(&mut e, &v).unwrap();
        let (serial, serial_pairs) = PqJoin::default()
            .run_collect(&mut e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(serial.pairs, 900);

        for shards in [1usize, 3, 8] {
            let hilbert = ParallelJoin::new(PqJoin::default(), HilbertPartitioner::default())
                .with_threads(4)
                .with_shards(shards);
            let (res, pairs) = hilbert
                .run_collect(&mut e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
                .unwrap();
            assert_eq!(res.pairs, serial.pairs, "hilbert, {shards} shards");
            assert_eq!(sorted(pairs), sorted(serial_pairs.clone()));

            let tile = ParallelJoin::new(SssjJoin::default(), TilePartitioner::default())
                .with_threads(3)
                .with_shards(shards);
            let (res, pairs) = tile
                .run_collect(&mut e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
                .unwrap();
            assert_eq!(res.pairs, serial.pairs, "tile, {shards} shards");
            assert_eq!(sorted(pairs), sorted(serial_pairs.clone()));
        }
    }

    #[test]
    fn pair_order_is_independent_of_the_thread_count() {
        let (h, v) = crossers(20);
        let mut e = env();
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let sv = ItemStream::from_items(&mut e, &v).unwrap();
        let run = |threads: usize, e: &mut SimEnv| {
            ParallelJoin::new(PbsmJoin::default(), HilbertPartitioner::default())
                .with_threads(threads)
                .with_shards(6)
                .run_collect(e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
                .unwrap()
                .1
        };
        let one = run(1, &mut e);
        let four = run(4, &mut e);
        assert_eq!(one, four, "pair order must be deterministic");
    }

    #[test]
    fn merged_stats_equal_the_sum_of_the_parts() {
        let (h, v) = crossers(25);
        let mut e = env();
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let sv = ItemStream::from_items(&mut e, &v).unwrap();
        let run = ParallelJoin::new(PqJoin::default(), TilePartitioner::default())
            .with_threads(4)
            .with_shards(5)
            .run_detailed(
                &mut e,
                JoinInput::Stream(&sh),
                JoinInput::Stream(&sv),
                &mut |_, _| {},
            )
            .unwrap();
        assert_eq!(run.shards.len(), 5);

        // The acceptance property: the total I/O statistics are exactly the
        // coordinator's plus every worker's.
        let mut expected_io = run.coordinator.io;
        let mut expected_cpu = run.coordinator.cpu;
        let mut expected_pairs = 0;
        for s in &run.shards {
            expected_io.merge(&s.io);
            expected_cpu.merge(&s.cpu);
            expected_pairs += s.pairs;
        }
        assert_eq!(run.total.io, expected_io);
        assert_eq!(run.total.cpu, expected_cpu);
        assert_eq!(run.total.pairs, expected_pairs);
        // Workers did real, accounted work on their own devices.
        assert!(run.shards.iter().any(|s| s.io.total_ops() > 0));
        assert!(run.coordinator.io.pages_read > 0);
    }

    #[test]
    fn indexed_shards_support_the_st_join() {
        let (h, v) = crossers(20);
        let mut e = env();
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let sv = ItemStream::from_items(&mut e, &v).unwrap();
        let serial = PqJoin::default()
            .run(&mut e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        let res = ParallelJoin::new(StJoin::default(), HilbertPartitioner::default())
            .with_threads(4)
            .with_shards(4)
            .with_indexed_shards()
            .run(&mut e, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, serial.pairs);
        assert!(res.index_page_requests > 0, "ST read its shard indexes");
    }

    #[test]
    fn empty_inputs_are_handled() {
        let mut e = env();
        let empty = ItemStream::from_items(&mut e, &[]).unwrap();
        let (h, _) = crossers(5);
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let res = ParallelJoin::new(PbsmJoin::default(), TilePartitioner::default())
            .with_shards(4)
            .run(&mut e, JoinInput::Stream(&empty), JoinInput::Stream(&sh))
            .unwrap();
        assert_eq!(res.pairs, 0);
    }

    #[test]
    fn region_hint_skips_the_discovery_scan() {
        let (h, v) = crossers(10);
        let mut e = env();
        let sh = ItemStream::from_items(&mut e, &h).unwrap();
        let sv = ItemStream::from_items(&mut e, &v).unwrap();
        let hinted = ParallelJoin::new(SssjJoin::default(), HilbertPartitioner::default())
            .with_shards(2)
            .with_region(Rect::from_coords(0.0, 0.0, 10.0, 10.0));
        let unhinted =
            ParallelJoin::new(SssjJoin::default(), HilbertPartitioner::default()).with_shards(2);
        let a = hinted
            .run_detailed(
                &mut e,
                JoinInput::Stream(&sh),
                JoinInput::Stream(&sv),
                &mut |_, _| {},
            )
            .unwrap();
        let b = unhinted
            .run_detailed(
                &mut e,
                JoinInput::Stream(&sh),
                JoinInput::Stream(&sv),
                &mut |_, _| {},
            )
            .unwrap();
        assert_eq!(a.total.pairs, b.total.pairs);
        assert!(a.coordinator.io.pages_read < b.coordinator.io.pages_read);
    }
}
