//! Scalable Sweeping-based Spatial Join (SSSJ).
//!
//! SSSJ (Arge et al., VLDB 1998 — Section 3.1 of the paper) sorts both inputs
//! by the lower y-coordinate of each MBR with the external mergesort, then
//! performs a single synchronized scan over the two sorted streams while
//! maintaining one interval structure per input. For the real-life data sets
//! of the evaluation the structures always fit in memory, so the algorithm is
//! exactly "sort + one sweep": two sequential read passes, one
//! non-sequential read pass (merging) and two sequential write passes over
//! the data. The worst-case partitioning step of the original algorithm is
//! never triggered by these workloads and is therefore not modelled; the
//! structure-size check that would trigger it is still performed and
//! reported.

use usj_geom::Rect;
use usj_io::{CpuOp, Result, SimEnv};
use usj_sweep::{Side, SpillingSweepDriver};

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::{JoinResult, MemoryStats};
use crate::sink::PairSink;
use crate::JoinOperator;

/// Configuration of the SSSJ join.
///
/// # Example
///
/// SSSJ works on flat (non-indexed) inputs: it externally sorts both by
/// lower y-coordinate and runs one plane sweep.
///
/// ```
/// use usj_core::{JoinInput, JoinOperator, SssjJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let rows: Vec<Item> = (0..20)
///     .map(|i| Item::new(Rect::from_coords(0.0, i as f32, 20.0, i as f32 + 0.5), i))
///     .collect();
/// let cols: Vec<Item> = (0..20)
///     .map(|i| Item::new(Rect::from_coords(i as f32, 0.0, i as f32 + 0.5, 20.0), 100 + i))
///     .collect();
/// let l = ItemStream::from_items(&mut env, &rows).unwrap();
/// let r = ItemStream::from_items(&mut env, &cols).unwrap();
/// let result = SssjJoin::default()
///     .run(&mut env, JoinInput::Stream(&l), JoinInput::Stream(&r))
///     .unwrap();
/// // Every row crosses every column.
/// assert_eq!(result.pairs, 400);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct SssjJoin {
    /// Optional bounding box of the data, used to size the striped sweep
    /// structure without an extra scan. When absent it is derived from the
    /// sort pass.
    pub region_hint: Option<Rect>,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl SssjJoin {
    /// Sets the region hint (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }
}

impl JoinOperator for SssjJoin {
    fn name(&self) -> &'static str {
        "SSSJ"
    }

    fn predicate(&self) -> Predicate {
        self.predicate
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let predicate = self.predicate;
        let eps = predicate.epsilon();

        // Phase 1: sort both inputs by lower y-coordinate. Indexed inputs are
        // deliberately treated as flat files — this is the "ignore the index"
        // behaviour whose cost Section 6.3 quantifies.
        let sort_phase = env.obs_phase("sssj.sort");
        let (left_sorted, left_bbox) = left.to_sorted_stream(env, self.region_hint)?;
        let (right_sorted, right_bbox) = right.to_sorted_stream(env, self.region_hint)?;
        env.obs_close(sort_phase);
        let region = self
            .region_hint
            .unwrap_or_else(|| left_bbox.union(&right_bbox))
            .expanded(eps);

        // Phase 2: single synchronized scan over the two sorted streams. Left
        // items are ε-expanded as they are read — a uniform shift of their
        // sort keys, so the merge order below stays correct. The driver is
        // the memory-governed spilling sweep: when the structures outgrow the
        // budget it evicts cold items to the simulated device (this is the
        // degradation path the original SSSJ's worst-case partitioning step
        // covers; for the paper's workloads it never triggers).
        let sweep_phase = env.obs_phase("sssj.sweep");
        let mut lr = left_sorted.reader();
        let mut rr = right_sorted.reader();
        let mut driver = SpillingSweepDriver::new(env, region.lo.x, region.hi.x);
        let mut lnext = lr.next(env)?.map(|it| predicate.expand_left(it));
        let mut rnext = rr.next(env)?;
        let mut pairs = 0u64;
        let mut done = false;
        while !done && (lnext.is_some() || rnext.is_some()) {
            let take_left = match (&lnext, &rnext) {
                (Some(a), Some(b)) => {
                    env.charge(CpuOp::Compare, 1);
                    a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater
                }
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                let item = lnext.take().expect("checked above");
                driver.push(env, Side::Left, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                lnext = lr.next(env)?.map(|it| predicate.expand_left(it));
            } else {
                let item = rnext.take().expect("checked above");
                driver.push(env, Side::Right, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                rnext = rr.next(env)?;
            }
        }
        env.obs_close(sweep_phase);
        // Fix up any pending spill epoch — unless the sink stopped the join,
        // in which case the remaining fix-up I/O is skipped entirely.
        let fixup_phase = env.obs_phase("sssj.fixup");
        let mut sweep = if done {
            driver.discard()
        } else {
            driver.finish(env, |a, b| {
                if done || !predicate.accepts(&a.rect, &b.rect) {
                    return;
                }
                if sink.emit(a.id, b.id).is_break() {
                    done = true;
                } else {
                    pairs += 1;
                }
            })?
        };
        env.obs_close(fixup_phase);
        sweep.pairs = pairs;
        env.charge(CpuOp::RectTest, sweep.rect_tests);
        env.charge(CpuOp::OutputPair, pairs);

        let (io, cpu) = env.since(&measurement);
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: 0,
            sweep,
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: sweep.max_structure_bytes,
                other_bytes: 0,
                peak_bytes: env.memory.peak(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::{ItemStream, MachineConfig};

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn cross_streets(n: u32) -> (Vec<Item>, Vec<Item>) {
        // n horizontal segments and n vertical segments arranged so every
        // vertical crosses every horizontal in a band.
        let horiz: Vec<Item> = (0..n)
            .map(|i| Item::new(Rect::from_coords(0.0, i as f32, n as f32, i as f32 + 0.1), i))
            .collect();
        let vert: Vec<Item> = (0..n)
            .map(|i| {
                Item::new(
                    Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, n as f32),
                    1000 + i,
                )
            })
            .collect();
        (horiz, vert)
    }

    #[test]
    fn joins_crossing_grids_completely() {
        let mut env = env();
        let (h, v) = cross_streets(20);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let res = SssjJoin::default()
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 400);
        assert_eq!(res.index_page_requests, 0);
        assert!(res.memory.sweep_structure_bytes > 0);
    }

    #[test]
    fn empty_inputs_produce_no_pairs() {
        let mut env = env();
        let empty = ItemStream::from_items(&mut env, &[]).unwrap();
        let (h, _) = cross_streets(5);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let res = SssjJoin::default()
            .run(&mut env, JoinInput::Stream(&empty), JoinInput::Stream(&sh))
            .unwrap();
        assert_eq!(res.pairs, 0);
    }

    #[test]
    fn io_is_stream_oriented_large_transfers() {
        // SSSJ accesses the disk through large logical blocks, so the average
        // transfer size per I/O operation is many pages — in contrast to the
        // index joins, which request one 8 KiB node at a time.
        let mut env = env();
        let parallel = |id_base: u32, offset: f32| -> Vec<Item> {
            (0..30_000u32)
                .map(|i| {
                    let y = i as f32 + offset;
                    Item::new(Rect::from_coords(0.0, y, 5.0, y + 0.8), id_base + i)
                })
                .collect()
        };
        let h = parallel(0, 0.0);
        let v = parallel(1_000_000, 0.5);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        env.device.reset_stats();
        let res = SssjJoin::default()
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert!(res.pairs > 0);
        let avg_pages_per_op =
            (res.io.pages_read + res.io.pages_written) as f64 / res.io.total_ops().max(1) as f64;
        assert!(
            avg_pages_per_op > 8.0,
            "SSSJ should stream in large blocks (avg {avg_pages_per_op:.1} pages/op)"
        );
    }

    #[test]
    fn accepts_indexed_inputs_by_ignoring_the_index() {
        let mut env = env();
        let (h, v) = cross_streets(30);
        let th = usj_rtree::RTree::bulk_load(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let res = SssjJoin::default()
            .run(&mut env, JoinInput::Indexed(&th), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 900);
    }

    #[test]
    fn collects_the_expected_pairs() {
        let mut env = env();
        let left = vec![Item::new(Rect::from_coords(0.0, 0.0, 2.0, 2.0), 1)];
        let right = vec![
            Item::new(Rect::from_coords(1.0, 1.0, 3.0, 3.0), 2),
            Item::new(Rect::from_coords(5.0, 5.0, 6.0, 6.0), 3),
        ];
        let sl = ItemStream::from_items(&mut env, &left).unwrap();
        let sr = ItemStream::from_items(&mut env, &right).unwrap();
        let (res, pairs) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
            .unwrap();
        assert_eq!(res.pairs, 1);
        assert_eq!(pairs, vec![(1, 2)]);
    }
}
