//! Spatial selectivity estimation.
//!
//! Section 6.3 of the paper proposes choosing between the indexed and
//! non-indexed execution strategies with a cost model whose key input is an
//! estimate of how much of the data actually participates in the join. The
//! paper points at the spatial histograms of Acharya, Poosala & Ramaswamy
//! (SIGMOD 1999); this module implements the simple uniform-grid variant: a
//! count of MBRs per grid cell, from which the overlap between two relations
//! can be estimated without touching the indexes.

use usj_geom::{Item, Rect};
use usj_io::{CpuOp, IoSimError, ItemStream, Result, SimEnv};

/// Largest supported grid resolution (cells per side). [`GridHistogram::new`]
/// clamps to it, and [`GridHistogram::decode`] rejects anything beyond it,
/// so every constructible histogram round-trips through serialization.
pub const MAX_HISTOGRAM_CELLS: usize = 4096;

/// A uniform-grid spatial histogram.
#[derive(Debug, Clone)]
pub struct GridHistogram {
    region: Rect,
    cells_per_side: usize,
    counts: Vec<u64>,
    total: u64,
}

impl GridHistogram {
    /// Creates an empty histogram with `cells_per_side`² cells over `region`
    /// (clamped to `1..=`[`MAX_HISTOGRAM_CELLS`]).
    pub fn new(region: Rect, cells_per_side: usize) -> Self {
        let cells_per_side = cells_per_side.clamp(1, MAX_HISTOGRAM_CELLS);
        GridHistogram {
            region,
            cells_per_side,
            counts: vec![0; cells_per_side * cells_per_side],
            total: 0,
        }
    }

    /// Builds a histogram from an in-memory slice.
    pub fn from_items(region: Rect, cells_per_side: usize, items: &[Item]) -> Self {
        let mut h = Self::new(region, cells_per_side);
        for it in items {
            h.add(&it.rect);
        }
        h
    }

    /// Builds a histogram from a stream with one sequential scan.
    pub fn from_stream(
        env: &mut SimEnv,
        region: Rect,
        cells_per_side: usize,
        stream: &ItemStream,
    ) -> Result<Self> {
        let mut h = Self::new(region, cells_per_side);
        let mut reader = stream.reader();
        while let Some(it) = reader.next(env)? {
            env.charge(CpuOp::RectTest, 1);
            h.add(&it.rect);
        }
        Ok(h)
    }

    /// Grid resolution.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Serializes the histogram for embedding in an on-device directory
    /// (such as the service catalog, which keeps one summary per dataset so
    /// query costing never rescans the data).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.counts.len() * 8);
        for v in [self.region.lo.x, self.region.lo.y, self.region.hi.x, self.region.hi.y] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&(self.cells_per_side as u64).to_le_bytes());
        buf.extend_from_slice(&self.total.to_le_bytes());
        for c in &self.counts {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        buf
    }

    /// Decodes a histogram produced by [`encode`](GridHistogram::encode),
    /// returning it and the number of bytes consumed.
    pub fn decode(buf: &[u8]) -> Result<(GridHistogram, usize)> {
        let err = IoSimError::CorruptRecord("histogram truncated");
        let f32_at = |off: usize| -> Result<f32> {
            buf.get(off..off + 4)
                .map(|b| f32::from_le_bytes(b.try_into().expect("checked length")))
                .ok_or(err.clone())
        };
        let u64_at = |off: usize| -> Result<u64> {
            buf.get(off..off + 8)
                .map(|b| u64::from_le_bytes(b.try_into().expect("checked length")))
                .ok_or(err.clone())
        };
        let region = Rect::from_coords(f32_at(0)?, f32_at(4)?, f32_at(8)?, f32_at(12)?);
        let cells_per_side = u64_at(16)? as usize;
        let total = u64_at(24)?;
        if cells_per_side == 0 || cells_per_side > MAX_HISTOGRAM_CELLS {
            return Err(IoSimError::CorruptRecord("histogram grid out of range"));
        }
        if buf.len() < 32 + cells_per_side * cells_per_side * 8 {
            return Err(err);
        }
        let mut counts = Vec::with_capacity(cells_per_side * cells_per_side);
        for i in 0..cells_per_side * cells_per_side {
            counts.push(u64_at(32 + i * 8)?);
        }
        let consumed = 32 + counts.len() * 8;
        Ok((
            GridHistogram {
                region,
                cells_per_side,
                counts,
                total,
            },
            consumed,
        ))
    }

    /// Total number of rectangles counted.
    pub fn total(&self) -> u64 {
        self.total
    }

    fn cell_of(&self, x: f32, y: f32) -> (usize, usize) {
        let n = self.cells_per_side;
        let w = self.region.width().max(f32::MIN_POSITIVE);
        let h = self.region.height().max(f32::MIN_POSITIVE);
        let cx = (((x - self.region.lo.x) / w) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        let cy = (((y - self.region.lo.y) / h) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        (cx, cy)
    }

    /// Adds one rectangle: its centre cell is counted (centre-point
    /// assignment keeps the histogram an exact partition of the relation).
    pub fn add(&mut self, r: &Rect) {
        let c = r.center();
        let (cx, cy) = self.cell_of(c.x, c.y);
        self.counts[cy * self.cells_per_side + cx] += 1;
        self.total += 1;
    }

    /// Number of rectangles whose centre falls inside `window` (the cells are
    /// counted conservatively: any cell overlapping the window contributes
    /// fully).
    pub fn count_in_window(&self, window: &Rect) -> u64 {
        if self.total == 0 || !self.region.intersects(window) {
            return 0;
        }
        let (x0, y0) = self.cell_of(window.lo.x, window.lo.y);
        let (x1, y1) = self.cell_of(window.hi.x, window.hi.y);
        let mut n = 0;
        for cy in y0..=y1 {
            for cx in x0..=x1 {
                n += self.counts[cy * self.cells_per_side + cx];
            }
        }
        n
    }

    /// Fraction of this relation's rectangles lying in cells where `other`
    /// has at least one rectangle (cells are dilated by one in each direction
    /// to account for rectangles extending beyond their centre cell).
    ///
    /// This is the "how much of me does the join actually need" estimate used
    /// by the cost-based join selector.
    pub fn overlap_fraction(&self, other: &GridHistogram) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        assert_eq!(
            self.cells_per_side, other.cells_per_side,
            "histograms must share a grid"
        );
        let n = self.cells_per_side;
        let mut covered = 0u64;
        for cy in 0..n {
            for cx in 0..n {
                if self.counts[cy * n + cx] == 0 {
                    continue;
                }
                // Dilate the other relation's occupancy by one cell.
                let mut occupied = false;
                'scan: for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let ox = cx as i64 + dx;
                        let oy = cy as i64 + dy;
                        if ox < 0 || oy < 0 || ox >= n as i64 || oy >= n as i64 {
                            continue;
                        }
                        if other.counts[oy as usize * n + ox as usize] > 0 {
                            occupied = true;
                            break 'scan;
                        }
                    }
                }
                if occupied {
                    covered += self.counts[cy * n + cx];
                }
            }
        }
        covered as f64 / self.total as f64
    }

    /// Rough estimate of the number of intersecting pairs between the two
    /// relations, assuming rectangles are small relative to a cell and
    /// uniformly distributed within each cell.
    pub fn estimate_join_pairs(&self, other: &GridHistogram) -> f64 {
        assert_eq!(self.cells_per_side, other.cells_per_side);
        let n = self.cells_per_side;
        let mut est = 0.0;
        for i in 0..n * n {
            // Within a cell the expected number of intersections is
            // proportional to the product of the counts; the constant is
            // folded into the caller's calibration.
            est += self.counts[i] as f64 * other.counts[i] as f64;
        }
        est / (n as f64 * n as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 100.0)
    }

    fn block(x0: f32, y0: f32, n: u32, id_base: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let x = x0 + (i % 10) as f32;
                let y = y0 + (i / 10) as f32;
                Item::new(Rect::from_coords(x, y, x + 0.5, y + 0.5), id_base + i)
            })
            .collect()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let items = block(10.0, 10.0, 250, 0);
        let h = GridHistogram::from_items(region(), 24, &items);
        let mut blob = h.encode();
        blob.extend_from_slice(b"directory tail");
        let (back, consumed) = GridHistogram::decode(&blob).unwrap();
        assert_eq!(consumed, h.encode().len());
        assert_eq!(back.total(), h.total());
        assert_eq!(back.cells_per_side(), h.cells_per_side());
        let w = Rect::from_coords(10.0, 10.0, 20.0, 20.0);
        assert_eq!(back.count_in_window(&w), h.count_in_window(&w));
        assert!(GridHistogram::decode(&blob[..20]).is_err());
    }

    #[test]
    fn counts_every_item_once() {
        let items = block(10.0, 10.0, 200, 0);
        let h = GridHistogram::from_items(region(), 16, &items);
        assert_eq!(h.total(), 200);
        assert_eq!(h.cells_per_side(), 16);
        assert_eq!(h.count_in_window(&region()), 200);
    }

    #[test]
    fn window_counts_are_monotone_in_window_size() {
        let items = block(10.0, 10.0, 300, 0);
        let h = GridHistogram::from_items(region(), 32, &items);
        let small = h.count_in_window(&Rect::from_coords(10.0, 10.0, 15.0, 15.0));
        let large = h.count_in_window(&Rect::from_coords(0.0, 0.0, 60.0, 60.0));
        assert!(small <= large);
        assert_eq!(h.count_in_window(&Rect::from_coords(80.0, 80.0, 90.0, 90.0)), 0);
    }

    #[test]
    fn overlap_fraction_detects_disjoint_and_colocated_relations() {
        let a = GridHistogram::from_items(region(), 20, &block(5.0, 5.0, 200, 0));
        let b_far = GridHistogram::from_items(region(), 20, &block(80.0, 80.0, 200, 1000));
        let b_same = GridHistogram::from_items(region(), 20, &block(6.0, 6.0, 200, 2000));
        assert_eq!(a.overlap_fraction(&b_far), 0.0);
        assert!(a.overlap_fraction(&b_same) > 0.8);
        // A relation overlapping only part of `a`.
        let b_half = GridHistogram::from_items(region(), 20, &block(5.0, 5.0, 100, 3000));
        let f = a.overlap_fraction(&b_half);
        assert!(f > 0.0 && f <= 1.0);
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let a = GridHistogram::new(region(), 8);
        let b = GridHistogram::from_items(region(), 8, &block(0.0, 0.0, 50, 0));
        assert_eq!(a.total(), 0);
        assert_eq!(a.overlap_fraction(&b), 0.0);
        assert_eq!(a.count_in_window(&region()), 0);
        assert_eq!(a.estimate_join_pairs(&b), 0.0);
    }

    #[test]
    fn join_estimate_grows_with_density() {
        let a = GridHistogram::from_items(region(), 16, &block(10.0, 10.0, 100, 0));
        let b_sparse = GridHistogram::from_items(region(), 16, &block(10.0, 10.0, 50, 1000));
        let b_dense = GridHistogram::from_items(region(), 16, &block(10.0, 10.0, 500, 2000));
        assert!(a.estimate_join_pairs(&b_dense) > a.estimate_join_pairs(&b_sparse));
    }

    #[test]
    fn from_stream_equals_from_items() {
        let mut env = SimEnv::new(usj_io::MachineConfig::machine3());
        let items = block(20.0, 20.0, 400, 0);
        let s = ItemStream::from_items(&mut env, &items).unwrap();
        let h1 = GridHistogram::from_stream(&mut env, region(), 16, &s).unwrap();
        let h2 = GridHistogram::from_items(region(), 16, &items);
        assert_eq!(h1.total(), h2.total());
        assert_eq!(h1.count_in_window(&region()), h2.count_in_window(&region()));
    }
}
