//! Synchronized R-tree Traversal (ST).
//!
//! ST (Brinkhoff, Kriegel & Seeger, SIGMOD 1993 — Section 3.3 of the paper)
//! joins two R-trees by a synchronized depth-first traversal: for every pair
//! of nodes whose directory rectangles intersect, the intersecting pairs of
//! child entries are computed (with the forward sweep, restricted to entries
//! overlapping the intersection of the two node rectangles) and the traversal
//! recurses into them; pairs of leaf entries are reported as results.
//!
//! Because the traversal revisits nodes, ST runs on top of a generous LRU
//! buffer pool (22 MB in the paper's configuration). Its page requests and
//! its largely *sequential* access pattern on bulk-loaded trees (children are
//! laid out consecutively, and DFS visits all leaves of a parent in a row)
//! are exactly what Table 4 and Figure 2 examine.

use usj_geom::Item;
use usj_io::{CpuOp, PageId, Result, SimEnv};
use usj_rtree::{NodeKind, NodeStore, RTree};
use usj_sweep::{sweep_join_eps_with, ForwardSweep, SweepJoinStats, SweepScratch};

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::{JoinResult, MemoryStats};
use crate::sink::PairSink;
use crate::JoinOperator;

/// Configuration of the ST join.
///
/// # Example
///
/// ST traverses two R-trees in lockstep through an LRU buffer pool; its
/// I/O accounting reports the index page requests of Table 4.
///
/// ```
/// use usj_core::{JoinInput, JoinOperator, StJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{MachineConfig, SimEnv};
/// use usj_rtree::RTree;
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let boxes: Vec<Item> = (0..100)
///     .map(|i| {
///         let (x, y) = ((i % 10) as f32, (i / 10) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.9, y + 0.9), i)
///     })
///     .collect();
/// let probes = vec![Item::new(Rect::from_coords(2.2, 2.2, 3.8, 3.8), 500)];
///
/// let left = RTree::bulk_load(&mut env, &boxes).unwrap();
/// let right = RTree::bulk_load(&mut env, &probes).unwrap();
/// let result = StJoin::default()
///     .with_buffer_pool_bytes(1 << 20)
///     .run(&mut env, JoinInput::Indexed(&left), JoinInput::Indexed(&right))
///     .unwrap();
/// // The probe overlaps the 2x2 block of cells (2..=3, 2..=3).
/// assert_eq!(result.pairs, 4);
/// assert!(result.index_page_requests > 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StJoin {
    /// Size of the LRU buffer pool in bytes (the paper gives ST 22 MB of the
    /// 24 MB of free memory).
    pub buffer_pool_bytes: usize,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl Default for StJoin {
    fn default() -> Self {
        StJoin {
            buffer_pool_bytes: 22 * 1024 * 1024,
            predicate: Predicate::default(),
        }
    }
}

impl StJoin {
    /// Sets the buffer-pool size (builder style).
    pub fn with_buffer_pool_bytes(mut self, bytes: usize) -> Self {
        self.buffer_pool_bytes = bytes.max(usj_io::PAGE_SIZE);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }
}

impl JoinOperator for StJoin {
    fn name(&self) -> &'static str {
        "ST"
    }

    fn predicate(&self) -> Predicate {
        self.predicate
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let predicate = self.predicate;
        let eps = predicate.epsilon();

        // ST is an index join: non-indexed inputs are bulk-loaded first (the
        // equivalent of the on-the-fly index construction the paper's related
        // work discusses); the construction cost is part of this run's
        // accounting so the comparison stays honest.
        let built_left;
        let built_right;
        let left_tree: &RTree = match left {
            JoinInput::Indexed(t) => t,
            JoinInput::Cataloged(c) => c.tree,
            JoinInput::Stream(s) | JoinInput::SortedStream(s) => {
                built_left = RTree::bulk_load_stream(env, s)?;
                &built_left
            }
        };
        let right_tree: &RTree = match right {
            JoinInput::Indexed(t) => t,
            JoinInput::Cataloged(c) => c.tree,
            JoinInput::Stream(s) | JoinInput::SortedStream(s) => {
                built_right = RTree::bulk_load_stream(env, s)?;
                &built_right
            }
        };

        // The pool is governed: its configured size is clamped to the memory
        // headroom minus a slack for the per-node-pair entry vectors — 1/12
        // of the headroom (the paper's 22 MB pool is exactly 24 MB minus
        // that slack, so the default configuration is unchanged), but never
        // below the worst-case envelope of one node pair (two full-fanout
        // nodes × the 3× sweep factor), so small-limit runs cannot strand
        // the traversal behind a full pool that only sheds pages for its own
        // inserts.
        let headroom = env.memory.headroom();
        let node_pair_envelope = 3 * 2 * usj_rtree::node::MAX_FANOUT * std::mem::size_of::<Item>();
        let slack = (headroom / 12).max(node_pair_envelope);
        let pool_budget = self
            .buffer_pool_bytes
            .min(headroom.saturating_sub(slack).max(usj_io::PAGE_SIZE));
        let mut store = NodeStore::with_capacity_bytes_gauged(pool_budget, &env.memory);
        let mut sweep_total = SweepJoinStats::default();
        let mut max_node_pair_bytes = 0usize;

        // Explicit DFS stack of node pairs whose directory rectangles
        // intersect. Left directory rectangles are ε-expanded throughout: an
        // expanded parent MBR covers its expanded children, so the traversal
        // is exact for the distance predicate too.
        let mut pairs = 0u64;
        let mut done = false;
        // One scratch pair serves the per-node-pair sweeps of the whole
        // traversal (ST runs one small sweep per intersecting node pair).
        let mut scratch = SweepScratch::new();
        let mut stack: Vec<(PageId, PageId)> = Vec::new();
        env.charge(CpuOp::RectTest, 1);
        if left_tree.bbox().expanded(eps).intersects(&right_tree.bbox()) {
            stack.push((left_tree.root(), right_tree.root()));
        }
        while let Some((pa, pb)) = stack.pop() {
            if done {
                break;
            }
            let node_a = store.read(env, pa)?;
            let node_b = store.read(env, pb)?;

            // Restrict both entry sets to the intersection of the two node
            // rectangles (Brinkhoff et al.'s search-space restriction).
            env.charge(CpuOp::RectTest, 1);
            let Some(common) = node_a.mbr().expanded(eps).intersection(&node_b.mbr()) else {
                continue;
            };
            let a_entries: Vec<Item> = node_a
                .entries
                .iter()
                .filter_map(|e| {
                    env.cpu.bump(CpuOp::RectTest);
                    let expanded = e.rect.expanded(eps);
                    expanded
                        .intersects(&common)
                        .then(|| Item::new(expanded, e.as_item().id))
                })
                .collect();
            let b_entries: Vec<Item> = node_b
                .entries
                .iter()
                .filter(|e| {
                    env.cpu.bump(CpuOp::RectTest);
                    e.rect.intersects(&common)
                })
                .map(|e| e.as_item())
                .collect();
            max_node_pair_bytes = max_node_pair_bytes
                .max((a_entries.len() + b_entries.len()) * std::mem::size_of::<Item>());
            // The entry vectors plus the sweep's internal sorted copies and
            // active lists (3× is a safe envelope for two node loads).
            let _node_claim = env.memory.try_reserve(
                3 * (a_entries.len() + b_entries.len()) * std::mem::size_of::<Item>(),
            )?;

            // Intersecting pairs of entries, computed with the forward sweep.
            // At the leaf level the candidates are additionally refined with
            // the predicate (containment is a data-rectangle test — applying
            // it to directory rectangles would wrongly prune subtrees).
            let leaf_level = node_a.kind == NodeKind::Leaf && node_b.kind == NodeKind::Leaf;
            let mut matches: Vec<(u32, u32)> = Vec::new();
            let stats = sweep_join_eps_with::<ForwardSweep, _>(
                &a_entries,
                &b_entries,
                0.0,
                &mut scratch,
                |a, b| {
                    if !leaf_level || predicate.accepts(&a.rect, &b.rect) {
                        matches.push((a.id, b.id));
                    }
                },
            );
            env.charge(CpuOp::RectTest, stats.rect_tests);
            env.charge(
                CpuOp::Compare,
                (a_entries.len() + b_entries.len()) as u64,
            );
            sweep_total = SweepJoinStats {
                pairs: sweep_total.pairs,
                left_items: sweep_total.left_items + stats.left_items,
                right_items: sweep_total.right_items + stats.right_items,
                rect_tests: sweep_total.rect_tests + stats.rect_tests,
                max_structure_bytes: sweep_total.max_structure_bytes.max(stats.max_structure_bytes),
                max_resident: sweep_total.max_resident.max(stats.max_resident),
                ..sweep_total
            };

            match (node_a.kind, node_b.kind) {
                (NodeKind::Leaf, NodeKind::Leaf) => {
                    for (a, b) in matches {
                        if sink.emit(a, b).is_break() {
                            done = true;
                            break;
                        }
                        pairs += 1;
                    }
                }
                (NodeKind::Internal, NodeKind::Internal) => {
                    // Depth-first: children pushed in reverse so the leftmost
                    // pair is explored first.
                    for (a, b) in matches.into_iter().rev() {
                        stack.push((PageId::from(a), PageId::from(b)));
                    }
                }
                (NodeKind::Leaf, NodeKind::Internal) => {
                    // Trees of different heights: descend only the internal
                    // side. Several leaf entries may match the same child, so
                    // deduplicate the children before recursing.
                    let mut children: Vec<u32> = matches.into_iter().map(|(_, b)| b).collect();
                    children.sort_unstable();
                    children.dedup();
                    for b in children.into_iter().rev() {
                        stack.push((pa, PageId::from(b)));
                    }
                }
                (NodeKind::Internal, NodeKind::Leaf) => {
                    let mut children: Vec<u32> = matches.into_iter().map(|(a, _)| a).collect();
                    children.sort_unstable();
                    children.dedup();
                    for a in children.into_iter().rev() {
                        stack.push((PageId::from(a), pb));
                    }
                }
            }
        }
        env.charge(CpuOp::OutputPair, pairs);
        sweep_total.pairs = pairs;

        let (io, cpu) = env.since(&measurement);
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: store.stats().misses,
            sweep: sweep_total,
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: sweep_total.max_structure_bytes,
                other_bytes: max_node_pair_bytes
                    + store.resident_pages() * usj_io::PAGE_SIZE,
                peak_bytes: env.memory.peak(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Rect;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid(n: u32, cell: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f32 * cell;
                let y = j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.6, y + cell * 0.6),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    fn brute(a: &[Item], b: &[Item]) -> u64 {
        a.iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum()
    }

    #[test]
    fn matches_brute_force_on_offset_grids() {
        let mut env = env();
        let a = grid(30, 10.0, 0);
        let b: Vec<Item> = grid(30, 10.0, 100_000)
            .into_iter()
            .map(|mut it| {
                it.rect = Rect::from_coords(
                    it.rect.lo.x + 3.0,
                    it.rect.lo.y + 3.0,
                    it.rect.hi.x + 3.0,
                    it.rect.hi.y + 3.0,
                );
                it
            })
            .collect();
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let res = StJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(res.pairs, brute(&a, &b));
        assert!(res.pairs > 0);
        assert!(res.index_page_requests > 0);
    }

    #[test]
    fn small_trees_fit_in_the_pool_and_are_read_once() {
        let mut env = env();
        let a = grid(25, 5.0, 0);
        let b = grid(25, 5.0, 100_000);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        env.device.reset_stats();
        let res = StJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        // With a 22 MB pool both small trees fit, so no page is requested
        // from disk more than once.
        assert!(res.index_page_requests <= ta.nodes() + tb.nodes());
    }

    #[test]
    fn tiny_buffer_pool_causes_repeated_page_requests() {
        let mut env = env();
        let a = grid(45, 5.0, 0);
        let b = grid(45, 5.0, 100_000);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let big = StJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        let small = StJoin::default()
            .with_buffer_pool_bytes(4 * usj_io::PAGE_SIZE)
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(big.pairs, small.pairs);
        assert!(
            small.index_page_requests > big.index_page_requests,
            "a starved pool must request more pages ({} vs {})",
            small.index_page_requests,
            big.index_page_requests
        );
    }

    #[test]
    fn disjoint_trees_touch_almost_nothing() {
        let mut env = env();
        let a = grid(20, 5.0, 0);
        let b: Vec<Item> = grid(20, 5.0, 100_000)
            .into_iter()
            .map(|mut it| {
                it.rect = Rect::from_coords(
                    it.rect.lo.x + 10_000.0,
                    it.rect.lo.y,
                    it.rect.hi.x + 10_000.0,
                    it.rect.hi.y,
                );
                it
            })
            .collect();
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let res = StJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(res.pairs, 0);
        assert!(res.index_page_requests <= 2, "only the roots may be touched");
    }

    #[test]
    fn non_indexed_inputs_are_bulk_loaded_first() {
        let mut env = env();
        let a = grid(15, 5.0, 0);
        let b = grid(15, 5.0, 100_000);
        let sa = usj_io::ItemStream::from_items(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let res = StJoin::default()
            .run(&mut env, JoinInput::Stream(&sa), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(res.pairs, brute(&a, &b));
        // Bulk loading writes pages, which shows up in the I/O accounting.
        assert!(res.io.pages_written > 0);
    }
}
