//! The accounting summary returned by every join.

use usj_io::{CostBreakdown, CostModel, CpuCounter, IoStats, MachineConfig};
use usj_sweep::SweepJoinStats;

/// Internal-memory usage of a join, the quantity Table 3 reports for PQ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Maximum size of the priority queues (including the staged leaf
    /// buffers) in bytes. Zero for algorithms without a priority queue.
    pub priority_queue_bytes: usize,
    /// Maximum size of the sweep-line interval structures in bytes.
    pub sweep_structure_bytes: usize,
    /// Maximum size of any other in-memory working set (PBSM partition
    /// buffers, ST node pairs, …) in bytes.
    pub other_bytes: usize,
    /// *Measured* high-water mark of every gauge-registered working set
    /// during the join, as recorded by the environment's
    /// [`MemoryGauge`](usj_io::MemoryGauge).
    ///
    /// Unlike the three per-structure maxima above (which peak at different
    /// moments and therefore may sum to more than was ever held at once),
    /// this is the actual simultaneous footprint — the quantity the memory
    /// governor guarantees never exceeds `SimEnv::memory_limit`.
    pub peak_bytes: usize,
}

impl MemoryStats {
    /// Total of all tracked working sets.
    ///
    /// This sums the per-structure maxima (not
    /// [`peak_bytes`](MemoryStats::peak_bytes), which is a concurrent
    /// measurement of its own).
    pub fn total_bytes(&self) -> usize {
        self.priority_queue_bytes + self.sweep_structure_bytes + self.other_bytes
    }

    /// Accumulates `other` by taking the component-wise maximum.
    ///
    /// Peaks do not add up across sequential phases, and for concurrent
    /// workers the per-worker peak is the quantity of interest (each worker
    /// has its own memory budget); an aggregate upper bound for a parallel
    /// run is the merged peak times the number of simultaneously active
    /// workers.
    pub fn merge(&mut self, other: &MemoryStats) {
        self.priority_queue_bytes = self.priority_queue_bytes.max(other.priority_queue_bytes);
        self.sweep_structure_bytes = self.sweep_structure_bytes.max(other.sweep_structure_bytes);
        self.other_bytes = self.other_bytes.max(other.other_bytes);
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }
}

/// Summary of one join execution.
///
/// `PartialEq` compares every counter, so equality means two executions were
/// byte-identical in accounting — the property the query-builder equivalence
/// suite asserts against the legacy entry points.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinResult {
    /// Intersecting pairs reported (after duplicate elimination).
    pub pairs: u64,
    /// I/O performed by the join (delta over the simulated device).
    pub io: IoStats,
    /// Deterministic CPU work performed by the join.
    pub cpu: CpuCounter,
    /// Pages of the spatial indexes requested from disk during the join
    /// (Table 4). Zero for the non-indexed algorithms.
    pub index_page_requests: u64,
    /// Plane-sweep statistics (pairs, rectangle tests, structure sizes).
    pub sweep: SweepJoinStats,
    /// Maximum internal-memory usage (Table 3).
    pub memory: MemoryStats,
}

impl JoinResult {
    /// Rolls the summary of another (sub-)execution into this one.
    ///
    /// Pair and operation counters are summed — merging every worker's
    /// result of a parallel partitioned run into the coordinator's yields
    /// the accounting an equivalent serial execution of all shards would
    /// have produced. Peak-memory statistics take the maximum instead (see
    /// [`MemoryStats::merge`]).
    pub fn merge(&mut self, other: &JoinResult) {
        self.pairs += other.pairs;
        self.io.merge(&other.io);
        self.cpu.merge(&other.cpu);
        self.index_page_requests += other.index_page_requests;
        self.sweep.merge(&other.sweep);
        self.memory.merge(&other.memory);
    }

    /// Observed (sequential/random aware) simulated running time on `machine`.
    pub fn observed_cost(&self, machine: &MachineConfig) -> CostBreakdown {
        CostModel::new(machine.clone()).observed(&self.io, &self.cpu)
    }

    /// Estimated running time using the "all page requests are random" model
    /// of earlier work (Figure 2(a)–(c)).
    pub fn estimated_cost(&self, machine: &MachineConfig) -> CostBreakdown {
        CostModel::new(machine.clone()).estimated(&self.io, &self.cpu)
    }

    /// Output pairs per left-input item, a rough selectivity measure.
    pub fn selectivity(&self, left_items: u64) -> f64 {
        if left_items == 0 {
            0.0
        } else {
            self.pairs as f64 / left_items as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_total_sums_components() {
        let m = MemoryStats {
            priority_queue_bytes: 100,
            sweep_structure_bytes: 50,
            other_bytes: 25,
            peak_bytes: 130,
        };
        assert_eq!(m.total_bytes(), 175, "peak_bytes is not part of the sum");
    }

    #[test]
    fn cost_helpers_use_the_given_machine() {
        let mut r = JoinResult::default();
        r.io.rand_read_ops = 100;
        r.io.pages_read = 100;
        let m1 = r.observed_cost(&MachineConfig::machine1());
        let m2 = r.observed_cost(&MachineConfig::machine2());
        // Machine 2 has a slower average access time, so the same random
        // traffic costs more there.
        assert!(m2.io_secs > m1.io_secs);
        let est = r.estimated_cost(&MachineConfig::machine1());
        assert!(est.io_secs >= m1.io_secs * 0.9);
    }

    #[test]
    fn selectivity_handles_empty_input() {
        let r = JoinResult { pairs: 10, ..JoinResult::default() };
        assert_eq!(r.selectivity(0), 0.0);
        assert_eq!(r.selectivity(20), 0.5);
    }
}
