//! The unified spatial-join algorithms.
//!
//! This crate is the paper's primary contribution plus the three algorithms
//! it is compared against, all running on the simulated external-memory
//! substrate of [`usj_io`]:
//!
//! * [`pq`] — **Priority-Queue-Driven Traversal (PQ)**, the new algorithm:
//!   an index adapter extracts the rectangles of an R-tree in sorted
//!   (lower-y) order with a priority queue, touching every node at most once,
//!   and feeds them — together with any sorted non-indexed inputs — into the
//!   same plane-sweep used by SSSJ. Indexed and non-indexed inputs are thus
//!   processed by one algorithm (Section 4).
//! * [`sssj`] — Scalable Sweeping-Based Spatial Join: external sort by lower
//!   y-coordinate followed by a single plane-sweep scan (Section 3.1).
//! * [`pbsm`] — Partition-Based Spatial Merge join: tile-hash partitioning
//!   followed by an in-memory sweep per partition (Section 3.2).
//! * [`st`] — Synchronized R-tree Traversal: depth-first traversal of two
//!   R-trees with an LRU buffer pool (Section 3.3).
//! * [`multiway`] — the 3-way intersection join built by cascading PQ
//!   (Section 4).
//! * [`histogram`] / [`cost`] — spatial selectivity estimation and the cost
//!   model of Section 6.3 that decides when to use the indexes ("use the
//!   index only when the join involves less than ~60 % of the leaves").
//! * [`parallel`] — the partition-parallel executor (not part of the paper):
//!   spatial sharding by Hilbert ranges or PBSM-style tiles, a worker pool
//!   running any of the serial joins on forked environments, and exact
//!   reference-point deduplication.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod histogram;
pub mod input;
pub mod multiway;
pub mod parallel;
pub mod pbsm;
pub mod pq;
pub mod result;
pub mod sssj;
pub mod st;

pub use cost::{CostBasedJoin, CostEstimate, JoinPlan};
pub use input::JoinInput;
pub use parallel::{HilbertPartitioner, ParallelJoin, Partitioner, ShardMap, TilePartitioner};
pub use pbsm::PbsmJoin;
pub use pq::PqJoin;
pub use result::{JoinResult, MemoryStats};
pub use sssj::SssjJoin;
pub use st::StJoin;

use usj_io::{Result, SimEnv};

/// The four join algorithms of the comparative study, as a value — used by
/// the experiment harness to iterate over algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Scalable Sweeping-based Spatial Join (non-indexed).
    Sssj,
    /// Partition-Based Spatial Merge join (non-indexed).
    Pbsm,
    /// Priority-Queue-Driven Traversal (works on indexed and non-indexed inputs).
    Pq,
    /// Synchronized R-tree Traversal (indexed only).
    St,
}

impl JoinAlgorithm {
    /// All algorithms in the order the paper's Figure 3 lists them
    /// (SJ, PB, PQ, ST).
    pub fn all() -> [JoinAlgorithm; 4] {
        [
            JoinAlgorithm::Sssj,
            JoinAlgorithm::Pbsm,
            JoinAlgorithm::Pq,
            JoinAlgorithm::St,
        ]
    }

    /// Short display name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            JoinAlgorithm::Sssj => "SJ",
            JoinAlgorithm::Pbsm => "PB",
            JoinAlgorithm::Pq => "PQ",
            JoinAlgorithm::St => "ST",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgorithm::Sssj => "SSSJ",
            JoinAlgorithm::Pbsm => "PBSM",
            JoinAlgorithm::Pq => "PQ",
            JoinAlgorithm::St => "ST",
        }
    }

    /// Runs the algorithm with its default configuration, discarding the
    /// output pairs (the paper's measurements exclude writing the output).
    pub fn run(
        self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
    ) -> Result<JoinResult> {
        match self {
            JoinAlgorithm::Sssj => SssjJoin::default().run(env, left, right),
            JoinAlgorithm::Pbsm => PbsmJoin::default().run(env, left, right),
            JoinAlgorithm::Pq => PqJoin::default().run(env, left, right),
            JoinAlgorithm::St => StJoin::default().run(env, left, right),
        }
    }
}

/// The interface shared by the four join implementations.
pub trait SpatialJoin {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// Runs the join, reporting every intersecting `(left_id, right_id)` pair
    /// to `sink` and returning the accounting summary.
    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn FnMut(u32, u32),
    ) -> Result<JoinResult>;

    /// Runs the join discarding the output pairs (the paper measures the
    /// filter step excluding output writing).
    fn run(&self, env: &mut SimEnv, left: JoinInput<'_>, right: JoinInput<'_>) -> Result<JoinResult> {
        self.run_with(env, left, right, &mut |_, _| {})
    }

    /// Runs the join and collects the output pairs in memory (intended for
    /// tests and small workloads).
    fn run_collect(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
    ) -> Result<(JoinResult, Vec<(u32, u32)>)> {
        let mut out = Vec::new();
        let res = self.run_with(env, left, right, &mut |a, b| out.push((a, b)))?;
        Ok((res, out))
    }
}

#[cfg(test)]
mod algorithm_tests;
// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
