//! The unified spatial-join algorithms.
//!
//! This crate is the paper's primary contribution plus the three algorithms
//! it is compared against, all running on the simulated external-memory
//! substrate of [`usj_io`]:
//!
//! * [`pq`] — **Priority-Queue-Driven Traversal (PQ)**, the new algorithm:
//!   an index adapter extracts the rectangles of an R-tree in sorted
//!   (lower-y) order with a priority queue, touching every node at most once,
//!   and feeds them — together with any sorted non-indexed inputs — into the
//!   same plane-sweep used by SSSJ. Indexed and non-indexed inputs are thus
//!   processed by one algorithm (Section 4).
//! * [`sssj`] — Scalable Sweeping-Based Spatial Join: external sort by lower
//!   y-coordinate followed by a single plane-sweep scan (Section 3.1).
//! * [`pbsm`] — Partition-Based Spatial Merge join: tile-hash partitioning
//!   followed by an in-memory sweep per partition (Section 3.2).
//! * [`st`] — Synchronized R-tree Traversal: depth-first traversal of two
//!   R-trees with an LRU buffer pool (Section 3.3).
//! * [`multiway`] — the 3-way intersection join built by cascading PQ
//!   (Section 4).
//! * [`histogram`] / [`cost`] — spatial selectivity estimation and the cost
//!   model of Section 6.3 that decides when to use the indexes ("use the
//!   index only when the join involves less than ~60 % of the leaves").
//! * [`parallel`] — the partition-parallel executor (not part of the paper):
//!   spatial sharding by Hilbert ranges or PBSM-style tiles, a worker pool
//!   running any of the serial joins on forked environments, and exact
//!   reference-point deduplication.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cost;
pub mod histogram;
pub mod input;
pub mod multiway;
pub mod parallel;
pub mod pbsm;
pub mod pq;
pub mod predicate;
pub mod query;
pub mod result;
pub mod sink;
pub mod sssj;
pub mod st;

pub use cost::{CostBasedJoin, CostEstimate, JoinPlan};
pub use histogram::GridHistogram;
pub use input::{CatalogedInput, JoinInput};
pub use multiway::MultiwayJoin;
pub use parallel::{HilbertPartitioner, ParallelJoin, Partitioner, ShardMap, TilePartitioner};
pub use pbsm::PbsmJoin;
pub use pq::PqJoin;
pub use predicate::Predicate;
pub use query::{Algo, Execution, MemoryPlan, PartitionStrategy, QueryPlan, SpatialQuery};
pub use result::{JoinResult, MemoryStats};
pub use sink::{CollectSink, CountSink, FanoutSink, LimitSink, PairSink, SampleSink, TripleSink};
pub use sssj::SssjJoin;
pub use st::StJoin;

use usj_io::{Result, SimEnv};

/// The four join algorithms of the comparative study, as a value — used by
/// the experiment harness to iterate over algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinAlgorithm {
    /// Scalable Sweeping-based Spatial Join (non-indexed).
    Sssj,
    /// Partition-Based Spatial Merge join (non-indexed).
    Pbsm,
    /// Priority-Queue-Driven Traversal (works on indexed and non-indexed inputs).
    Pq,
    /// Synchronized R-tree Traversal (indexed only).
    St,
}

impl JoinAlgorithm {
    /// All algorithms in the order the paper's Figure 3 lists them
    /// (SJ, PB, PQ, ST).
    pub fn all() -> [JoinAlgorithm; 4] {
        [
            JoinAlgorithm::Sssj,
            JoinAlgorithm::Pbsm,
            JoinAlgorithm::Pq,
            JoinAlgorithm::St,
        ]
    }

    /// Short display name used in the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            JoinAlgorithm::Sssj => "SJ",
            JoinAlgorithm::Pbsm => "PB",
            JoinAlgorithm::Pq => "PQ",
            JoinAlgorithm::St => "ST",
        }
    }

    /// Full display name.
    pub fn name(self) -> &'static str {
        match self {
            JoinAlgorithm::Sssj => "SSSJ",
            JoinAlgorithm::Pbsm => "PBSM",
            JoinAlgorithm::Pq => "PQ",
            JoinAlgorithm::St => "ST",
        }
    }

    /// Runs the algorithm with its default configuration, discarding the
    /// output pairs (the paper's measurements exclude writing the output).
    ///
    /// This routes through [`SpatialQuery`], the single algorithm-dispatch
    /// site of the crate.
    pub fn run(
        self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
    ) -> Result<JoinResult> {
        SpatialQuery::new(left, right).algorithm(self.into()).run(env)
    }
}

/// The interface shared by the join implementations (the four serial
/// algorithms and the parallel executor wrapping them).
///
/// Output pairs stream through a [`PairSink`], whose
/// [`ControlFlow`](std::ops::ControlFlow)-returning
/// [`emit`](PairSink::emit) lets consumers stop the join early (LIMIT-style
/// queries). A stopped join returns normally with the accounting of the work
/// it actually performed; [`JoinResult::pairs`] counts the pairs delivered to
/// the sink.
pub trait JoinOperator {
    /// Human-readable algorithm name.
    fn name(&self) -> &'static str;

    /// The pair-selection predicate this operator evaluates.
    ///
    /// Wrappers (the parallel executor) use this to keep their replication
    /// and deduplication geometry consistent with the inner operator.
    fn predicate(&self) -> Predicate {
        Predicate::Intersects
    }

    /// Runs the join, streaming every accepted `(left_id, right_id)` pair to
    /// `sink` and returning the accounting summary.
    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult>;

    /// Runs the join discarding the output pairs (the paper measures the
    /// filter step excluding output writing).
    fn run(&self, env: &mut SimEnv, left: JoinInput<'_>, right: JoinInput<'_>) -> Result<JoinResult> {
        self.run_with(env, left, right, &mut CountSink::default())
    }

    /// Runs the join and collects the output pairs in memory (intended for
    /// tests and small workloads).
    fn run_collect(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
    ) -> Result<(JoinResult, Vec<(u32, u32)>)> {
        let mut sink = CollectSink::default();
        let res = self.run_with(env, left, right, &mut sink)?;
        Ok((res, sink.pairs))
    }
}

/// Boxed operators forward to their contents, so heterogeneous algorithm
/// choices (the query planner's) can flow through generic executors.
impl JoinOperator for Box<dyn JoinOperator + Send + Sync> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn predicate(&self) -> Predicate {
        (**self).predicate()
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        (**self).run_with(env, left, right, sink)
    }
}

// The pre-0.2 `SpatialJoin` trait (a bare `FnMut(u32, u32)` callback shim
// over `JoinOperator`) was deprecated in 0.2.0 and has been removed as
// promised after one release. Use `JoinOperator` with a `PairSink`, or the
// `SpatialQuery` builder — plain closures still implement `PairSink`, so
// `op.run_with(env, l, r, &mut |a, b| ...)` keeps working unchanged.

#[cfg(test)]
mod algorithm_tests;
// Property-based tests need the external `proptest` crate, which the
// offline build environment cannot provide; they are opt-in behind the
// `proptest` feature (see KNOWN_FAILURES.md).
#[cfg(all(test, feature = "proptest"))]
mod proptests;
