//! Multi-way intersection joins.
//!
//! Section 4 of the paper points out that because PQ produces its output in
//! sorted (lower-y) order, a 3-way intersection join can be evaluated by
//! feeding the output of one two-way join directly into a second join with a
//! third indexed or non-indexed input — no intermediate materialisation or
//! re-sorting is needed. This module implements that cascade: the pairs of
//! the first sweep become "composite" rectangles (the intersection of the two
//! partners, which is produced in ascending lower-y order) and stream into a
//! second sweep against the third relation.
//!
//! Output triples stream through a [`TripleSink`], so LIMIT-style early
//! termination works across the whole cascade.

use usj_geom::Item;
use usj_io::{CpuOp, Result, SimEnv};
use usj_sweep::{Side, StripedSweep, SweepDriver};

use crate::input::JoinInput;
use crate::pq::PqJoin;
use crate::result::MemoryStats;
use crate::sink::TripleSink;

/// An output triple of object identifiers `(a_id, b_id, c_id)`.
pub type Triple = (u32, u32, u32);

/// Result of a 3-way intersection join.
#[derive(Debug, Clone, Default)]
pub struct MultiwayResult {
    /// Number of `(a, b, c)` triples whose three MBRs have a common pairwise
    /// intersection pattern `a∩b ≠ ∅ ∧ (a∩b)∩c ≠ ∅`.
    pub triples: u64,
    /// Number of intermediate `(a, b)` pairs produced by the first sweep.
    pub intermediate_pairs: u64,
    /// Index pages requested across all three inputs.
    pub index_page_requests: u64,
    /// I/O performed by the whole cascade.
    pub io: usj_io::IoStats,
    /// Maximum internal memory used by the queues and sweep structures.
    pub memory: MemoryStats,
}

/// The cascaded 3-way intersection join `(a ⋈ b) ⋈ c` (Section 4).
///
/// A configuration type so the facade can expose the multi-way join next to
/// the two-way operators; today it has no knobs beyond its existence.
///
/// # Example
///
/// ```
/// use usj_core::{JoinInput, MultiwayJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let sq = |x: f32, y: f32, id| Item::new(Rect::from_coords(x, y, x + 2.0, y + 2.0), id);
/// let a = ItemStream::from_items(&mut env, &[sq(0.0, 0.0, 1)]).unwrap();
/// let b = ItemStream::from_items(&mut env, &[sq(1.0, 1.0, 2)]).unwrap();
/// let c = ItemStream::from_items(&mut env, &[sq(1.5, 1.5, 3)]).unwrap();
/// let (res, triples) = MultiwayJoin
///     .run_collect(
///         &mut env,
///         JoinInput::Stream(&a),
///         JoinInput::Stream(&b),
///         JoinInput::Stream(&c),
///     )
///     .unwrap();
/// assert_eq!(res.triples, 1);
/// assert_eq!(triples, vec![(1, 2, 3)]);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiwayJoin;

impl MultiwayJoin {
    /// Runs the cascade, reporting every triple of identifiers to `sink`.
    pub fn run_with(
        &self,
        env: &mut SimEnv,
        a: JoinInput<'_>,
        b: JoinInput<'_>,
        c: JoinInput<'_>,
        sink: &mut dyn TripleSink,
    ) -> Result<MultiwayResult> {
        three_way_join(env, a, b, c, sink)
    }

    /// Runs the cascade discarding the output triples.
    pub fn run(
        &self,
        env: &mut SimEnv,
        a: JoinInput<'_>,
        b: JoinInput<'_>,
        c: JoinInput<'_>,
    ) -> Result<MultiwayResult> {
        self.run_with(env, a, b, c, &mut |_, _, _| {})
    }

    /// Runs the cascade collecting the triples in memory (tests, small
    /// workloads).
    pub fn run_collect(
        &self,
        env: &mut SimEnv,
        a: JoinInput<'_>,
        b: JoinInput<'_>,
        c: JoinInput<'_>,
    ) -> Result<(MultiwayResult, Vec<Triple>)> {
        let mut out = Vec::new();
        let res = self.run_with(env, a, b, c, &mut |x, y, z| out.push((x, y, z)))?;
        Ok((res, out))
    }
}

/// Runs the cascaded 3-way intersection join `(a ⋈ b) ⋈ c`, streaming every
/// triple of identifiers to `sink`.
pub fn three_way_join(
    env: &mut SimEnv,
    a: JoinInput<'_>,
    b: JoinInput<'_>,
    c: JoinInput<'_>,
    sink: &mut dyn TripleSink,
) -> Result<MultiwayResult> {
    let measurement = env.begin();
    env.memory.begin_phase();
    let pq = PqJoin::default();

    let (mut a_src, a_bbox) = pq.make_source(env, &a, None)?;
    let (mut b_src, b_bbox) = pq.make_source(env, &b, None)?;
    let (mut c_src, c_bbox) = pq.make_source(env, &c, None)?;
    let region = a_bbox.union(&b_bbox).union(&c_bbox);

    // First sweep joins a and b; its output pairs (intersection rectangles)
    // are produced in ascending lower-y order and feed the second sweep
    // together with the items of c.
    let mut first: SweepDriver<StripedSweep> = SweepDriver::new(region.lo.x, region.hi.x);
    let mut second: SweepDriver<StripedSweep> = SweepDriver::new(region.lo.x, region.hi.x);

    // Composite bookkeeping: composite id -> (a_id, b_id).
    let mut composites: Vec<(u32, u32)> = Vec::new();

    // The cascaded sweeps run on the plain in-memory driver (no spilling
    // mode for the 3-way cascade yet), so their structures and the composite
    // table register with the gauge wholesale: a run that outgrows the limit
    // fails with `MemoryLimitExceeded` rather than silently overcommitting,
    // and the reported peak stays a true measurement.
    let mut sweep_claim = env.memory.reserve_empty();

    let mut triples = 0u64;
    let mut intermediate = 0u64;
    let mut done = false;

    let mut a_next = a_src.next(env)?;
    let mut b_next = b_src.next(env)?;
    let mut c_next = c_src.next(env)?;

    while !done && (a_next.is_some() || b_next.is_some()) {
        // Which of the two first-join inputs supplies the next event?
        let take_a = match (&a_next, &b_next) {
            (Some(x), Some(y)) => {
                env.charge(CpuOp::Compare, 1);
                x.cmp_by_lower_y(y) != std::cmp::Ordering::Greater
            }
            (Some(_), None) => true,
            (None, _) => false,
        };
        let event = if take_a {
            a_next.take().expect("checked above")
        } else {
            b_next.take().expect("checked above")
        };
        let event_y = event.rect.lo.y;

        // Before advancing the first sweep past event_y, feed every c item
        // that lies below it into the second sweep so its events stay sorted.
        while let Some(citem) = c_next {
            env.charge(CpuOp::Compare, 1);
            if citem.rect.lo.y > event_y {
                c_next = Some(citem);
                break;
            }
            second.push(Side::Right, citem, |comp, cit| {
                if done {
                    return;
                }
                let (aid, bid) = composites[comp.id as usize];
                if sink.emit(aid, bid, cit.id).is_break() {
                    done = true;
                } else {
                    triples += 1;
                }
            });
            c_next = c_src.next(env)?;
        }

        // Advance the first sweep; every reported pair becomes a composite
        // rectangle pushed into the second sweep immediately (its lower-y is
        // exactly event_y, so ordering is preserved).
        let mut produced: Vec<(Item, Item)> = Vec::new();
        if take_a {
            first.push(Side::Left, event, |x, y| produced.push((*x, *y)));
            a_next = a_src.next(env)?;
        } else {
            first.push(Side::Right, event, |x, y| produced.push((*x, *y)));
            b_next = b_src.next(env)?;
        }
        for (ia, ib) in produced {
            intermediate += 1;
            let inter = ia
                .rect
                .intersection(&ib.rect)
                .expect("reported pairs always intersect");
            let comp_id = composites.len() as u32;
            composites.push((ia.id, ib.id));
            second.push(Side::Left, Item::new(inter, comp_id), |comp, cit| {
                if done {
                    return;
                }
                let (aid, bid) = composites[comp.id as usize];
                if sink.emit(aid, bid, cit.id).is_break() {
                    done = true;
                } else {
                    triples += 1;
                }
            });
        }
        sweep_claim.try_set(
            first.bytes()
                + second.bytes()
                + composites.len() * std::mem::size_of::<(u32, u32)>(),
        )?;
    }
    // Remaining c items may still match composites already in the structure.
    while !done {
        let Some(citem) = c_next else { break };
        second.push(Side::Right, citem, |comp, cit| {
            if done {
                return;
            }
            let (aid, bid) = composites[comp.id as usize];
            if sink.emit(aid, bid, cit.id).is_break() {
                done = true;
            } else {
                triples += 1;
            }
        });
        sweep_claim.try_set(
            first.bytes()
                + second.bytes()
                + composites.len() * std::mem::size_of::<(u32, u32)>(),
        )?;
        c_next = c_src.next(env)?;
    }

    env.charge(CpuOp::OutputPair, triples);
    let first_stats = first.finish();
    let second_stats = second.finish();
    let (io, _) = env.since(&measurement);
    Ok(MultiwayResult {
        triples,
        intermediate_pairs: intermediate,
        index_page_requests: a_src.nodes_read() + b_src.nodes_read() + c_src.nodes_read(),
        io,
        memory: MemoryStats {
            priority_queue_bytes: a_src.max_queue_bytes()
                + b_src.max_queue_bytes()
                + c_src.max_queue_bytes(),
            sweep_structure_bytes: first_stats.max_structure_bytes
                + second_stats.max_structure_bytes,
            other_bytes: composites.len() * std::mem::size_of::<(u32, u32)>(),
            peak_bytes: env.memory.peak(),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::ControlFlow;
    use usj_geom::Rect;
    use usj_io::{ItemStream, MachineConfig};
    use usj_rtree::RTree;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn brute_triples(a: &[Item], b: &[Item], c: &[Item]) -> u64 {
        let mut n = 0;
        for x in a {
            for y in b {
                let Some(i) = x.rect.intersection(&y.rect) else { continue };
                for z in c {
                    if i.intersects(&z.rect) {
                        n += 1;
                    }
                }
            }
        }
        n
    }

    fn scatter(n: u32, seed: u32, size: f32, id_base: u32) -> Vec<Item> {
        // Simple deterministic pseudo-random scatter.
        let mut state = seed as u64 * 2654435761 + 1;
        (0..n)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let x = ((state >> 33) % 1000) as f32 / 10.0;
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let y = ((state >> 33) % 1000) as f32 / 10.0;
                Item::new(Rect::from_coords(x, y, x + size, y + size), id_base + i)
            })
            .collect()
    }

    #[test]
    fn three_way_matches_brute_force() {
        let mut env = env();
        let a = scatter(120, 1, 4.0, 0);
        let b = scatter(100, 2, 4.0, 10_000);
        let c = scatter(80, 3, 4.0, 20_000);
        let expected = brute_triples(&a, &b, &c);
        assert!(expected > 0, "test workload should produce triples");

        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let sc = ItemStream::from_items(&mut env, &c).unwrap();
        let mut got = 0u64;
        let res = three_way_join(
            &mut env,
            JoinInput::Indexed(&ta),
            JoinInput::Indexed(&tb),
            JoinInput::Stream(&sc),
            &mut |_, _, _| got += 1,
        )
        .unwrap();
        assert_eq!(res.triples, expected);
        assert_eq!(got, expected);
        assert!(res.intermediate_pairs >= res.triples.min(1));
        assert!(res.index_page_requests > 0);
    }

    #[test]
    fn empty_third_input_gives_no_triples() {
        let mut env = env();
        let a = scatter(50, 1, 4.0, 0);
        let b = scatter(50, 2, 4.0, 10_000);
        let empty = ItemStream::from_items(&mut env, &[]).unwrap();
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();
        let res = MultiwayJoin
            .run(
                &mut env,
                JoinInput::Stream(&sa),
                JoinInput::Stream(&sb),
                JoinInput::Stream(&empty),
            )
            .unwrap();
        assert_eq!(res.triples, 0);
        assert!(res.intermediate_pairs > 0);
    }

    #[test]
    fn all_non_indexed_inputs_work() {
        let mut env = env();
        let a = scatter(60, 5, 5.0, 0);
        let b = scatter(60, 6, 5.0, 10_000);
        let c = scatter(60, 7, 5.0, 20_000);
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();
        let sc = ItemStream::from_items(&mut env, &c).unwrap();
        let res = MultiwayJoin
            .run(
                &mut env,
                JoinInput::Stream(&sa),
                JoinInput::Stream(&sb),
                JoinInput::Stream(&sc),
            )
            .unwrap();
        assert_eq!(res.triples, brute_triples(&a, &b, &c));
        assert_eq!(res.index_page_requests, 0);
    }

    /// A sink that stops the cascade after `limit` triples.
    struct TripleLimit {
        limit: u64,
        got: u64,
    }

    impl TripleSink for TripleLimit {
        fn emit(&mut self, _: u32, _: u32, _: u32) -> ControlFlow<()> {
            if self.got >= self.limit {
                return ControlFlow::Break(());
            }
            self.got += 1;
            ControlFlow::Continue(())
        }
    }

    #[test]
    fn limited_sink_stops_the_cascade_early() {
        let mut env = env();
        let a = scatter(80, 11, 5.0, 0);
        let b = scatter(80, 12, 5.0, 10_000);
        let c = scatter(80, 13, 5.0, 20_000);
        let total = brute_triples(&a, &b, &c);
        assert!(total > 5);
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();
        let sc = ItemStream::from_items(&mut env, &c).unwrap();
        let mut sink = TripleLimit { limit: 3, got: 0 };
        let res = MultiwayJoin
            .run_with(
                &mut env,
                JoinInput::Stream(&sa),
                JoinInput::Stream(&sb),
                JoinInput::Stream(&sc),
                &mut sink,
            )
            .unwrap();
        assert_eq!(res.triples, 3);
        assert_eq!(sink.got, 3);
    }
}
