//! Cross-algorithm tests: all four joins must agree with each other and with
//! a brute-force join on realistic TIGER-like workloads.

use usj_datagen::{Preset, WorkloadSpec};
use usj_io::{ItemStream, MachineConfig, SimEnv};
use usj_rtree::RTree;

use crate::{JoinAlgorithm, JoinInput, JoinOperator};

fn env() -> SimEnv {
    SimEnv::new(MachineConfig::machine3())
}

fn tiny_workload() -> usj_datagen::Workload {
    WorkloadSpec::preset(Preset::NJ).with_scale(400).generate(11)
}

#[test]
fn all_four_algorithms_agree_on_a_tiger_like_workload() {
    let mut env = env();
    let w = tiny_workload();
    let expected = w.reference_join_size();
    assert!(expected > 0, "workload must produce intersections");

    let roads_tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let roads_stream = ItemStream::from_items(&mut env, &w.roads).unwrap();
    let hydro_stream = ItemStream::from_items(&mut env, &w.hydro).unwrap();

    for alg in JoinAlgorithm::all() {
        let (left, right) = match alg {
            // The index joins get the indexed representation, the stream
            // joins get the flat files — exactly as in the paper's setup.
            JoinAlgorithm::Pq | JoinAlgorithm::St => (
                JoinInput::Indexed(&roads_tree),
                JoinInput::Indexed(&hydro_tree),
            ),
            _ => (
                JoinInput::Stream(&roads_stream),
                JoinInput::Stream(&hydro_stream),
            ),
        };
        let res = alg.run(&mut env, left, right).unwrap();
        assert_eq!(
            res.pairs, expected,
            "{} disagrees with the reference join",
            alg.name()
        );
    }
}

#[test]
fn pq_and_st_agree_on_indexed_inputs_and_report_page_requests() {
    let mut env = env();
    let w = tiny_workload();
    let roads_tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();

    let pq = crate::PqJoin::default()
        .run(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .unwrap();
    let st = crate::StJoin::default()
        .run(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .unwrap();
    assert_eq!(pq.pairs, st.pairs);
    // PQ touches every node exactly once — the "optimal" count of Table 4.
    assert_eq!(
        pq.index_page_requests,
        roads_tree.nodes() + hydro_tree.nodes()
    );
    assert!(st.index_page_requests > 0);
}

#[test]
fn identical_pair_sets_not_just_counts() {
    let mut env = env();
    let w = WorkloadSpec::preset(Preset::NJ).with_scale(1_000).generate(3);
    let roads_tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let roads_stream = ItemStream::from_items(&mut env, &w.roads).unwrap();
    let hydro_stream = ItemStream::from_items(&mut env, &w.hydro).unwrap();

    let (_, mut pq_pairs) = crate::PqJoin::default()
        .run_collect(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .unwrap();
    let (_, mut sssj_pairs) = crate::SssjJoin::default()
        .run_collect(
            &mut env,
            JoinInput::Stream(&roads_stream),
            JoinInput::Stream(&hydro_stream),
        )
        .unwrap();
    let (_, mut pbsm_pairs) = crate::PbsmJoin::default()
        .run_collect(
            &mut env,
            JoinInput::Stream(&roads_stream),
            JoinInput::Stream(&hydro_stream),
        )
        .unwrap();
    let (_, mut st_pairs) = crate::StJoin::default()
        .run_collect(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .unwrap();
    for v in [&mut pq_pairs, &mut sssj_pairs, &mut pbsm_pairs, &mut st_pairs] {
        v.sort_unstable();
        v.dedup();
    }
    assert_eq!(pq_pairs, sssj_pairs);
    assert_eq!(pq_pairs, pbsm_pairs);
    assert_eq!(pq_pairs, st_pairs);
}

#[test]
fn algorithm_enum_exposes_names() {
    assert_eq!(JoinAlgorithm::all().len(), 4);
    assert_eq!(JoinAlgorithm::Sssj.short_name(), "SJ");
    assert_eq!(JoinAlgorithm::Pbsm.name(), "PBSM");
    assert_eq!(JoinAlgorithm::Pq.short_name(), "PQ");
    assert_eq!(JoinAlgorithm::St.name(), "ST");
}

#[test]
fn sssj_transfers_more_pages_but_pq_issues_more_random_requests() {
    // The heart of Figure 3: SSSJ reads and writes far more data than PQ, but
    // it does so in large sequential blocks, while PQ pays one (mostly
    // random) page request per index node.
    let mut env = env();
    let w = WorkloadSpec::preset(Preset::NY).with_scale(50).generate(5);
    let roads_tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let roads_stream = ItemStream::from_items(&mut env, &w.roads).unwrap();
    let hydro_stream = ItemStream::from_items(&mut env, &w.hydro).unwrap();

    let sssj = crate::SssjJoin::default()
        .run(
            &mut env,
            JoinInput::Stream(&roads_stream),
            JoinInput::Stream(&hydro_stream),
        )
        .unwrap();
    let pq = crate::PqJoin::default()
        .run(
            &mut env,
            JoinInput::Indexed(&roads_tree),
            JoinInput::Indexed(&hydro_tree),
        )
        .unwrap();
    assert_eq!(sssj.pairs, pq.pairs);
    // SSSJ moves more data in total (several passes plus writes)...
    let sssj_pages = sssj.io.pages_read + sssj.io.pages_written;
    let pq_pages = pq.io.pages_read + pq.io.pages_written;
    assert!(
        sssj_pages > pq_pages,
        "SSSJ should transfer more pages ({sssj_pages} vs {pq_pages})"
    );
    // ...but PQ issues far more individual (seek-prone) read requests.
    assert!(
        pq.io.read_ops() > sssj.io.read_ops(),
        "PQ should issue more page requests ({} vs {})",
        pq.io.read_ops(),
        sssj.io.read_ops()
    );
}

#[test]
fn parallel_executor_matches_the_serial_joins_on_nj_and_ny() {
    // Acceptance check for the parallel partitioned executor: on the NJ and
    // NY presets, ParallelJoin over both partitioners reports exactly the
    // pair counts of the serial PQ and PBSM joins.
    use crate::parallel::{HilbertPartitioner, ParallelJoin, TilePartitioner};
    use crate::{PbsmJoin, PqJoin};

    for (preset, scale) in [(Preset::NJ, 400), (Preset::NY, 800)] {
        let mut env = env();
        let w = WorkloadSpec::preset(preset).with_scale(scale).generate(11);
        let expected = w.reference_join_size();
        assert!(expected > 0, "{preset:?} workload must produce intersections");

        let roads = ItemStream::from_items(&mut env, &w.roads).unwrap();
        let hydro = ItemStream::from_items(&mut env, &w.hydro).unwrap();
        let left = JoinInput::Stream(&roads);
        let right = JoinInput::Stream(&hydro);

        let serial_pq = PqJoin::default().run(&mut env, left, right).unwrap();
        let serial_pbsm = PbsmJoin::default().run(&mut env, left, right).unwrap();
        assert_eq!(serial_pq.pairs, expected);
        assert_eq!(serial_pbsm.pairs, expected);

        let hilbert_pq = ParallelJoin::new(PqJoin::default(), HilbertPartitioner::default())
            .with_threads(4)
            .with_shards(6)
            .run(&mut env, left, right)
            .unwrap();
        assert_eq!(hilbert_pq.pairs, serial_pq.pairs, "{preset:?}: hilbert/PQ");

        let tile_pbsm = ParallelJoin::new(PbsmJoin::default(), TilePartitioner::default())
            .with_threads(4)
            .with_shards(6)
            .run(&mut env, left, right)
            .unwrap();
        assert_eq!(tile_pbsm.pairs, serial_pbsm.pairs, "{preset:?}: tile/PBSM");
    }
}
