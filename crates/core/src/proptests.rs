//! Property-based tests: every join algorithm must agree with a brute-force
//! join on arbitrary rectangle sets, for every input representation.

use proptest::prelude::*;
use usj_geom::{Item, Rect};
use usj_io::{ItemStream, MachineConfig, SimEnv};
use usj_rtree::RTree;

use crate::{JoinInput, JoinOperator, PbsmJoin, PqJoin, SssjJoin, StJoin};

fn arb_items(max_len: usize, id_base: u32) -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        (
            -200.0f32..200.0,
            -200.0f32..200.0,
            0.0f32..40.0,
            0.0f32..40.0,
        ),
        1..max_len,
    )
    .prop_map(move |v| {
        v.into_iter()
            .enumerate()
            .map(|(i, (x, y, w, h))| {
                Item::new(Rect::from_coords(x, y, x + w, y + h), id_base + i as u32)
            })
            .collect()
    })
}

fn brute(a: &[Item], b: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if x.rect.intersects(&y.rect) {
                out.push((x.id, y.id));
            }
        }
    }
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pq_matches_brute_force_on_all_input_combinations(
        a in arb_items(80, 0),
        b in arb_items(80, 10_000),
    ) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);

        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();

        for (l, r) in [
            (JoinInput::Indexed(&ta), JoinInput::Indexed(&tb)),
            (JoinInput::Indexed(&ta), JoinInput::Stream(&sb)),
            (JoinInput::Stream(&sa), JoinInput::Indexed(&tb)),
            (JoinInput::Stream(&sa), JoinInput::Stream(&sb)),
        ] {
            let (_, mut pairs) = PqJoin::default().run_collect(&mut env, l, r).unwrap();
            pairs.sort_unstable();
            prop_assert_eq!(&pairs, &expected);
        }
    }

    #[test]
    fn sssj_and_pbsm_match_brute_force(
        a in arb_items(80, 0),
        b in arb_items(80, 10_000),
    ) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();

        let (_, mut sssj) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        sssj.sort_unstable();
        prop_assert_eq!(&sssj, &expected);

        let (_, mut pbsm) = PbsmJoin::default()
            .with_partitions(4)
            .run_collect(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        pbsm.sort_unstable();
        prop_assert_eq!(&pbsm, &expected);
    }

    #[test]
    fn st_matches_brute_force(
        a in arb_items(60, 0),
        b in arb_items(60, 10_000),
    ) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let (_, mut st) = StJoin::default()
            .run_collect(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        st.sort_unstable();
        st.dedup();
        prop_assert_eq!(&st, &expected);
    }

    #[test]
    fn pruned_pq_never_changes_the_result(
        a in arb_items(60, 0),
        b in arb_items(30, 10_000),
    ) {
        let mut env = SimEnv::new(MachineConfig::machine3());
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let plain = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        let pruned = PqJoin::default()
            .with_pruning()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        prop_assert_eq!(plain.pairs, pruned.pairs);
        prop_assert!(pruned.index_page_requests <= plain.index_page_requests);
    }
}
