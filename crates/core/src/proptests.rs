//! Property-based tests on the in-tree `usj_proptest` harness: every join
//! algorithm must agree with a brute-force join on arbitrary rectangle sets,
//! for every input representation — and stay within the memory limit.

use usj_geom::{Item, Rect};
use usj_io::{ItemStream, MachineConfig, SimEnv};
use usj_proptest::{forall, Gen};
use usj_rtree::RTree;

use crate::{JoinInput, JoinOperator, PbsmJoin, PqJoin, SssjJoin, StJoin};

fn arb_items(g: &mut Gen, max_len: usize, id_base: u32) -> Vec<Item> {
    let mut next = 0u32;
    g.vec(1, max_len, |g| {
        let x = g.f32_in(-200.0, 200.0);
        let y = g.f32_in(-200.0, 200.0);
        let w = g.f32_in(0.0, 40.0);
        let h = g.f32_in(0.0, 40.0);
        let id = id_base + next;
        next += 1;
        Item::new(Rect::from_coords(x, y, x + w, y + h), id)
    })
}

fn brute(a: &[Item], b: &[Item]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    for x in a {
        for y in b {
            if x.rect.intersects(&y.rect) {
                out.push((x.id, y.id));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn pq_matches_brute_force_on_all_input_combinations() {
    forall!(24, |g| {
        let a = arb_items(g, 80, 0);
        let b = arb_items(g, 80, 10_000);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);

        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();

        for (l, r) in [
            (JoinInput::Indexed(&ta), JoinInput::Indexed(&tb)),
            (JoinInput::Indexed(&ta), JoinInput::Stream(&sb)),
            (JoinInput::Stream(&sa), JoinInput::Indexed(&tb)),
            (JoinInput::Stream(&sa), JoinInput::Stream(&sb)),
        ] {
            let (_, mut pairs) = PqJoin::default().run_collect(&mut env, l, r).unwrap();
            pairs.sort_unstable();
            assert_eq!(&pairs, &expected);
        }
    });
}

#[test]
fn sssj_and_pbsm_match_brute_force() {
    forall!(24, |g| {
        let a = arb_items(g, 80, 0);
        let b = arb_items(g, 80, 10_000);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();

        let (_, mut sssj) = SssjJoin::default()
            .run_collect(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        sssj.sort_unstable();
        assert_eq!(&sssj, &expected);

        let (_, mut pbsm) = PbsmJoin::default()
            .with_partitions(4)
            .run_collect(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        pbsm.sort_unstable();
        assert_eq!(&pbsm, &expected);
    });
}

#[test]
fn st_matches_brute_force() {
    forall!(24, |g| {
        let a = arb_items(g, 60, 0);
        let b = arb_items(g, 60, 10_000);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let expected = brute(&a, &b);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let (_, mut st) = StJoin::default()
            .run_collect(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        st.sort_unstable();
        st.dedup();
        assert_eq!(&st, &expected);
    });
}

#[test]
fn pruned_pq_never_changes_the_result() {
    forall!(24, |g| {
        let a = arb_items(g, 60, 0);
        let b = arb_items(g, 30, 10_000);
        let mut env = SimEnv::new(MachineConfig::machine3());
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let plain = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        let pruned = PqJoin::default()
            .with_pruning()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(plain.pairs, pruned.pairs);
        assert!(pruned.index_page_requests <= plain.index_page_requests);
    });
}

#[test]
fn every_algorithm_respects_a_small_memory_limit_on_arbitrary_inputs() {
    forall!(12, |g| {
        let a = arb_items(g, 120, 0);
        let b = arb_items(g, 120, 10_000);
        let expected = brute(&a, &b);
        // 256 KB: small enough that the governor's degradation paths are in
        // play for the denser draws, large enough for the stream buffers.
        let limit = 256 * 1024;
        let mut env = SimEnv::new(MachineConfig::machine3()).with_memory_limit(limit);
        let sa = ItemStream::from_items_with_block(&mut env, &a, 2).unwrap();
        let sb = ItemStream::from_items_with_block(&mut env, &b, 2).unwrap();
        let joins: [&dyn JoinOperator; 4] = [
            &SssjJoin::default(),
            &PbsmJoin::default(),
            &PqJoin::default(),
            &StJoin::default(),
        ];
        for join in joins {
            let (res, mut pairs) = join
                .run_collect(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
                .unwrap();
            pairs.sort_unstable();
            pairs.dedup();
            assert_eq!(&pairs, &expected, "{}", join.name());
            assert!(
                res.memory.peak_bytes <= limit,
                "{}: peak {} over the {limit}-byte limit",
                join.name(),
                res.memory.peak_bytes
            );
        }
    });
}
