//! Priority-Queue-Driven Traversal (PQ) — the paper's new algorithm.
//!
//! PQ unifies the indexed and non-indexed approaches. A non-indexed input is
//! handled exactly as in SSSJ: sorted by lower y-coordinate and fed to the
//! plane sweep. An indexed input is *not* re-sorted; instead an **index
//! adapter** extracts its rectangles in sorted order directly from the
//! R-tree:
//!
//! * a priority queue, ordered by lower y-coordinate, initially holds the
//!   bounding rectangle of the root;
//! * extracting the minimum either returns a data rectangle (which is fed to
//!   the sweep) or an internal node, whose children are read from disk and
//!   inserted into the queue.
//!
//! Every node of the tree is touched at most once, so the adapter performs
//! the "optimal" number of page requests (Table 4). Following the paper's
//! implementation section, two queues are maintained — one for internal
//! nodes (storing only `(y, page)`) and one for data rectangles — and when a
//! leaf is loaded its rectangles are sorted and staged so that only one of
//! them sits in the data queue at a time.
//!
//! The optional *pruned* variant only descends into subtrees that can
//! intersect the other input (Section 4 mentions this modification; it
//! matters only for localized joins such as the Section 6.3 example and is
//! exercised by the cost-model experiment).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use usj_geom::{Item, Rect};
use usj_io::{CpuOp, MemoryReservation, Result, SimEnv};
use usj_rtree::{NodeKind, RTree};
use usj_sweep::{Side, SpillingSweepDriver};

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::{JoinResult, MemoryStats};
use crate::sink::PairSink;
use crate::JoinOperator;

/// Total order wrapper for `f32` priority-queue keys.
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF32(f32);

impl Eq for OrdF32 {}

impl PartialOrd for OrdF32 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF32 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Entry of the internal-node queue: lower y-coordinate and page number only
/// (12 bytes of payload, as in the paper's space optimisation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct InternalEntry {
    y: OrdF32,
    page: u64,
}

/// Entry of the data queue: the staged head rectangle of one loaded leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct LeafHead {
    y: OrdF32,
    buffer: usize,
}

/// Bytes charged per queue entry when accounting memory usage (Table 3).
const INTERNAL_ENTRY_BYTES: usize = 12; // y + page id
const LEAF_HEAD_BYTES: usize = 24; // four coordinates + id + buffer index

/// The index adapter: extracts the data rectangles of an R-tree in ascending
/// lower-y order, touching each node at most once.
#[derive(Debug)]
pub struct PqExtractor<'a> {
    tree: &'a RTree,
    internal: BinaryHeap<Reverse<InternalEntry>>,
    heads: BinaryHeap<Reverse<LeafHead>>,
    /// Staged leaf contents: `(sorted items, cursor)`.
    buffers: Vec<(Vec<Item>, usize)>,
    free_buffers: Vec<usize>,
    prune: Option<Rect>,
    nodes_read: u64,
    staged_bytes: usize,
    max_bytes: usize,
    /// Gauge claim on the queues and staged leaf buffers, kept in sync with
    /// `current_bytes` — the PQ working set is governed like every other.
    reservation: MemoryReservation,
}

impl<'a> PqExtractor<'a> {
    /// Creates an extractor over `tree`. When `prune` is given, subtrees whose
    /// directory rectangle does not intersect it are never visited.
    pub fn new(env: &mut SimEnv, tree: &'a RTree, prune: Option<Rect>) -> Self {
        let mut internal = BinaryHeap::new();
        env.charge(CpuOp::HeapOp, 1);
        internal.push(Reverse(InternalEntry {
            y: OrdF32(tree.bbox().lo.y),
            page: tree.root(),
        }));
        let mut ex = PqExtractor {
            tree,
            internal,
            heads: BinaryHeap::new(),
            buffers: Vec::new(),
            free_buffers: Vec::new(),
            prune,
            nodes_read: 0,
            staged_bytes: 0,
            max_bytes: 0,
            reservation: env.memory.reserve_empty(),
        };
        // The initial state is one 12-byte root entry; if even that fails to
        // reserve, the first `next` call re-checks and surfaces the error.
        let _ = ex.note_bytes();
        ex
    }

    /// Number of index pages read so far.
    pub fn nodes_read(&self) -> u64 {
        self.nodes_read
    }

    /// Largest combined size of the two queues plus the staged leaf buffers.
    pub fn max_bytes(&self) -> usize {
        self.max_bytes
    }

    fn current_bytes(&self) -> usize {
        self.internal.len() * INTERNAL_ENTRY_BYTES
            + self.heads.len() * LEAF_HEAD_BYTES
            + self.staged_bytes
    }

    fn note_bytes(&mut self) -> Result<()> {
        let bytes = self.current_bytes();
        self.max_bytes = self.max_bytes.max(bytes);
        self.reservation.try_set(bytes)
    }

    fn stage_leaf(&mut self, env: &mut SimEnv, mut items: Vec<Item>) {
        if items.is_empty() {
            return;
        }
        let n = items.len() as u64;
        env.charge(CpuOp::Compare, n * (64 - n.leading_zeros()) as u64);
        env.charge(CpuOp::ItemMove, n);
        items.sort_unstable_by(Item::cmp_by_lower_y);
        self.staged_bytes += items.len() * usj_geom::ITEM_BYTES;
        let slot = match self.free_buffers.pop() {
            Some(s) => {
                self.buffers[s] = (items, 0);
                s
            }
            None => {
                self.buffers.push((items, 0));
                self.buffers.len() - 1
            }
        };
        let first_y = self.buffers[slot].0[0].rect.lo.y;
        env.charge(CpuOp::HeapOp, 1);
        self.heads.push(Reverse(LeafHead {
            y: OrdF32(first_y),
            buffer: slot,
        }));
    }

    /// Extract-Next-Item (Figure 1 of the paper): returns the next data
    /// rectangle in ascending lower-y order, or `None` when the tree is
    /// exhausted.
    pub fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        loop {
            let take_internal = match (self.internal.peek(), self.heads.peek()) {
                (Some(Reverse(i)), Some(Reverse(h))) => {
                    env.charge(CpuOp::Compare, 1);
                    i.y <= h.y
                }
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return Ok(None),
            };
            if take_internal {
                env.charge(CpuOp::HeapOp, 1);
                let Reverse(entry) = self.internal.pop().expect("peeked above");
                let node = self.tree.read_node(env, entry.page)?;
                self.nodes_read += 1;
                match node.kind {
                    NodeKind::Internal => {
                        for e in &node.entries {
                            if let Some(p) = &self.prune {
                                env.charge(CpuOp::RectTest, 1);
                                if !e.rect.intersects(p) {
                                    continue;
                                }
                            }
                            env.charge(CpuOp::HeapOp, 1);
                            self.internal.push(Reverse(InternalEntry {
                                y: OrdF32(e.rect.lo.y),
                                page: e.child_page(),
                            }));
                        }
                    }
                    NodeKind::Leaf => {
                        let items: Vec<Item> = node
                            .entries
                            .iter()
                            .filter(|e| match &self.prune {
                                None => true,
                                Some(p) => {
                                    env.cpu.bump(CpuOp::RectTest);
                                    e.rect.intersects(p)
                                }
                            })
                            .map(|e| e.as_item())
                            .collect();
                        self.stage_leaf(env, items);
                    }
                }
                self.note_bytes()?;
            } else {
                env.charge(CpuOp::HeapOp, 1);
                let Reverse(head) = self.heads.pop().expect("peeked above");
                let (items, cursor) = &mut self.buffers[head.buffer];
                let item = items[*cursor];
                *cursor += 1;
                self.staged_bytes -= usj_geom::ITEM_BYTES;
                if *cursor < items.len() {
                    let next_y = items[*cursor].rect.lo.y;
                    env.charge(CpuOp::HeapOp, 1);
                    self.heads.push(Reverse(LeafHead {
                        y: OrdF32(next_y),
                        buffer: head.buffer,
                    }));
                } else {
                    items.clear();
                    items.shrink_to_fit();
                    *cursor = 0;
                    self.free_buffers.push(head.buffer);
                }
                self.note_bytes()?;
                return Ok(Some(item));
            }
        }
    }
}

/// One sorted source feeding the sweep: either an index adapter or a reader
/// over an already-sorted stream.
pub(crate) enum SortedSource<'a> {
    /// The PQ index adapter over an R-tree.
    Extractor(PqExtractor<'a>),
    /// A reader over a stream that is already sorted by lower y-coordinate.
    Stream(usj_io::ItemStreamReader),
}

impl<'a> SortedSource<'a> {
    pub(crate) fn next(&mut self, env: &mut SimEnv) -> Result<Option<Item>> {
        match self {
            SortedSource::Extractor(e) => e.next(env),
            SortedSource::Stream(r) => r.next(env),
        }
    }

    pub(crate) fn nodes_read(&self) -> u64 {
        match self {
            SortedSource::Extractor(e) => e.nodes_read(),
            SortedSource::Stream(_) => 0,
        }
    }

    pub(crate) fn max_queue_bytes(&self) -> usize {
        match self {
            SortedSource::Extractor(e) => e.max_bytes(),
            SortedSource::Stream(_) => 0,
        }
    }
}

/// Configuration of the PQ join.
///
/// # Example
///
/// PQ is the unified algorithm: it accepts any mix of indexed and
/// non-indexed inputs. Here one side is an R-tree, the other a flat stream.
///
/// ```
/// use usj_core::{JoinInput, JoinOperator, PqJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
/// use usj_rtree::RTree;
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let columns: Vec<Item> = (0..50)
///     .map(|i| Item::new(Rect::from_coords(i as f32, 0.0, i as f32 + 0.5, 10.0), i))
///     .collect();
/// let band = vec![Item::new(Rect::from_coords(0.0, 4.0, 50.0, 5.0), 1000)];
///
/// let tree = RTree::bulk_load(&mut env, &columns).unwrap();
/// let stream = ItemStream::from_items(&mut env, &band).unwrap();
/// let result = PqJoin::default()
///     .run(&mut env, JoinInput::Indexed(&tree), JoinInput::Stream(&stream))
///     .unwrap();
/// // The band crosses every column once.
/// assert_eq!(result.pairs, 50);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct PqJoin {
    /// When `true`, the index adapters only visit subtrees that can intersect
    /// the other input's bounding rectangle. This is the modification the
    /// paper describes for sparse/localized joins; it has no effect when both
    /// inputs cover the same region.
    pub prune_to_other: bool,
    /// Optional data-space hint used to size the striped sweep structure.
    pub region_hint: Option<Rect>,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl PqJoin {
    /// Enables subtree pruning against the other input's bounding box.
    pub fn with_pruning(mut self) -> Self {
        self.prune_to_other = true;
        self
    }

    /// Sets the region hint (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    pub(crate) fn make_source<'a>(
        &self,
        env: &mut SimEnv,
        input: &JoinInput<'a>,
        prune: Option<Rect>,
    ) -> Result<(SortedSource<'a>, Rect)> {
        match input {
            JoinInput::Indexed(tree) => {
                let bbox = tree.bbox();
                Ok((
                    SortedSource::Extractor(PqExtractor::new(env, tree, prune)),
                    bbox,
                ))
            }
            JoinInput::Stream(_) | JoinInput::SortedStream(_) => {
                let (sorted, bbox) = input.to_sorted_stream(env, self.region_hint)?;
                Ok((SortedSource::Stream(sorted.reader()), bbox))
            }
            JoinInput::Cataloged(c) => {
                // A cataloged relation has both representations persisted.
                // Reading the sorted run sequentially is the cheapest source
                // — unless a prune window restricts the traversal to part of
                // the relation, in which case the index extractor reads only
                // the touched subtrees.
                match prune {
                    Some(window) if !window.contains(&c.bbox) => Ok((
                        SortedSource::Extractor(PqExtractor::new(env, c.tree, prune)),
                        c.bbox,
                    )),
                    _ => Ok((SortedSource::Stream(c.sorted.reader()), c.bbox)),
                }
            }
        }
    }
}

impl JoinOperator for PqJoin {
    fn name(&self) -> &'static str {
        "PQ"
    }

    fn predicate(&self) -> Predicate {
        self.predicate
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let predicate = self.predicate;
        let eps = predicate.epsilon();

        // Pruning rectangles: each side may restrict the other's traversal.
        // Under a distance predicate the prune windows grow by ε, so no
        // near-miss subtree is skipped.
        let (left_prune, right_prune) = if self.prune_to_other {
            (
                right.known_bbox().map(|b| predicate.expand_rect(b)),
                left.known_bbox().map(|b| predicate.expand_rect(b)),
            )
        } else {
            (None, None)
        };

        let (mut left_src, left_bbox) = self.make_source(env, &left, left_prune)?;
        let (mut right_src, right_bbox) = self.make_source(env, &right, right_prune)?;
        let region = self
            .region_hint
            .unwrap_or_else(|| left_bbox.union(&right_bbox))
            .expanded(eps);

        // Left items are ε-expanded as they leave their source — a uniform
        // shift of the sort keys, so the merge order stays correct. The
        // memory-governed spilling driver evicts cold sweep state to the
        // simulated device if it ever outgrows the budget.
        let mut driver = SpillingSweepDriver::new(env, region.lo.x, region.hi.x);
        let mut pairs = 0u64;
        let mut done = false;
        let mut lnext = left_src.next(env)?.map(|it| predicate.expand_left(it));
        let mut rnext = right_src.next(env)?;
        while !done && (lnext.is_some() || rnext.is_some()) {
            let take_left = match (&lnext, &rnext) {
                (Some(a), Some(b)) => {
                    env.charge(CpuOp::Compare, 1);
                    a.cmp_by_lower_y(b) != std::cmp::Ordering::Greater
                }
                (Some(_), None) => true,
                (None, _) => false,
            };
            if take_left {
                let item = lnext.take().expect("checked above");
                driver.push(env, Side::Left, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                lnext = left_src.next(env)?.map(|it| predicate.expand_left(it));
            } else {
                let item = rnext.take().expect("checked above");
                driver.push(env, Side::Right, item, |a, b| {
                    if done || !predicate.accepts(&a.rect, &b.rect) {
                        return;
                    }
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                })?;
                rnext = right_src.next(env)?;
            }
        }
        let mut sweep = if done {
            driver.discard()
        } else {
            driver.finish(env, |a, b| {
                if done || !predicate.accepts(&a.rect, &b.rect) {
                    return;
                }
                if sink.emit(a.id, b.id).is_break() {
                    done = true;
                } else {
                    pairs += 1;
                }
            })?
        };
        sweep.pairs = pairs;
        env.charge(CpuOp::RectTest, sweep.rect_tests);
        env.charge(CpuOp::OutputPair, pairs);

        let (io, cpu) = env.since(&measurement);
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: left_src.nodes_read() + right_src.nodes_read(),
            sweep,
            memory: MemoryStats {
                priority_queue_bytes: left_src.max_queue_bytes() + right_src.max_queue_bytes(),
                sweep_structure_bytes: sweep.max_structure_bytes,
                other_bytes: 0,
                peak_bytes: env.memory.peak(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_io::{ItemStream, MachineConfig};

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid(n: u32, cell: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = i as f32 * cell;
                let y = j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    fn brute(a: &[Item], b: &[Item]) -> u64 {
        a.iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum()
    }

    #[test]
    fn extractor_yields_items_in_sorted_order_touching_each_node_once() {
        let mut env = env();
        let items = grid(40, 3.0, 0);
        let tree = RTree::bulk_load(&mut env, &items).unwrap();
        env.device.reset_stats();
        let mut ex = PqExtractor::new(&mut env, &tree, None);
        let mut extracted = Vec::new();
        while let Some(it) = ex.next(&mut env).unwrap() {
            extracted.push(it);
        }
        assert_eq!(extracted.len(), items.len());
        assert!(extracted.windows(2).all(|w| w[0].rect.lo.y <= w[1].rect.lo.y));
        // Optimal page requests: every node exactly once.
        assert_eq!(ex.nodes_read(), tree.nodes());
        assert_eq!(env.device.stats().pages_read, tree.nodes());
        assert!(ex.max_bytes() > 0);
        // All ids present.
        let mut ids: Vec<u32> = extracted.iter().map(|i| i.id).collect();
        ids.sort_unstable();
        let mut expected: Vec<u32> = items.iter().map(|i| i.id).collect();
        expected.sort_unstable();
        assert_eq!(ids, expected);
    }

    #[test]
    fn indexed_indexed_join_matches_brute_force() {
        let mut env = env();
        let a = grid(25, 4.0, 0);
        let b: Vec<Item> = grid(25, 4.0, 100_000)
            .into_iter()
            .map(|mut it| {
                it.rect = Rect::from_coords(
                    it.rect.lo.x + 1.5,
                    it.rect.lo.y + 1.5,
                    it.rect.hi.x + 1.5,
                    it.rect.hi.y + 1.5,
                );
                it
            })
            .collect();
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let res = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(res.pairs, brute(&a, &b));
        assert_eq!(res.index_page_requests, ta.nodes() + tb.nodes());
        assert!(res.memory.priority_queue_bytes > 0);
    }

    #[test]
    fn mixed_indexed_and_non_indexed_inputs_agree() {
        let mut env = env();
        let a = grid(20, 4.0, 0);
        let b = grid(20, 5.0, 100_000);
        let expected = brute(&a, &b);

        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let sb = ItemStream::from_items(&mut env, &b).unwrap();
        let mixed = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Stream(&sb))
            .unwrap();
        assert_eq!(mixed.pairs, expected);

        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let both_streams = PqJoin::default()
            .run(&mut env, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        assert_eq!(both_streams.pairs, expected);
    }

    #[test]
    fn pruned_variant_reads_fewer_pages_on_localized_joins() {
        let mut env = env();
        // Left: a large country-wide relation. Right: a small localized one.
        let a = grid(60, 4.0, 0);
        let b: Vec<Item> = grid(8, 4.0, 100_000).to_vec();
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let expected = brute(&a, &b);

        let plain = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        let pruned = PqJoin::default()
            .with_pruning()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(plain.pairs, expected);
        assert_eq!(pruned.pairs, expected);
        assert!(
            pruned.index_page_requests < plain.index_page_requests,
            "pruning should skip untouched subtrees ({} vs {})",
            pruned.index_page_requests,
            plain.index_page_requests
        );
    }

    #[test]
    fn empty_tree_joins_cleanly() {
        let mut env = env();
        let a = grid(10, 4.0, 0);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tempty = RTree::bulk_load(&mut env, &[]).unwrap();
        let res = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tempty))
            .unwrap();
        assert_eq!(res.pairs, 0);
    }

    #[test]
    fn priority_queue_stays_small_relative_to_the_data() {
        // Table 3's observation: the PQ working set is a tiny fraction of the
        // data set (< 1 % in the paper).
        let mut env = env();
        let a = grid(70, 3.0, 0); // 4900 items
        let b = grid(40, 5.0, 100_000); // 1600 items
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let res = PqJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        let data_bytes = (a.len() + b.len()) * usj_geom::ITEM_BYTES;
        assert!(
            res.memory.priority_queue_bytes < data_bytes / 2,
            "queue {} bytes vs data {} bytes",
            res.memory.priority_queue_bytes,
            data_bytes
        );
    }
}
