//! Join inputs: indexed or non-indexed relations.

use usj_geom::Rect;
use usj_io::{extsort, CpuOp, ItemStream, ItemStreamWriter, Result, SimEnv};
use usj_rtree::{NodeKind, RTree};

/// A relation registered in a dataset catalog: *both* of its prepared
/// representations — the bulk-loaded R-tree and the y-sorted run — persisted
/// on the device, plus the known bounding box.
///
/// This is what "register once, query many" buys: an algorithm that wants
/// the index uses [`tree`](CatalogedInput::tree) without bulk-loading, an
/// algorithm that wants sorted input uses [`sorted`](CatalogedInput::sorted)
/// without re-sorting, and nobody scans for the bounding box. The handle is
/// produced by the service crate's `Catalog`; it is a plain borrow so the
/// core crate stays independent of the catalog implementation.
#[derive(Debug, Clone, Copy)]
pub struct CatalogedInput<'a> {
    /// The persisted packed R-tree over the relation.
    pub tree: &'a RTree,
    /// The persisted stream of the relation's MBRs, sorted by lower
    /// y-coordinate.
    pub sorted: &'a ItemStream,
    /// Bounding box of the relation, recorded at registration.
    pub bbox: Rect,
}

/// One input relation of a spatial join.
///
/// The whole point of the PQ algorithm is that a relation may arrive either
/// with a spatial index or as a flat file; this enum is how callers express
/// that choice.
#[derive(Debug, Clone, Copy)]
pub enum JoinInput<'a> {
    /// The relation is indexed by a packed R-tree.
    Indexed(&'a RTree),
    /// The relation is a non-indexed stream of MBRs in arbitrary order.
    Stream(&'a ItemStream),
    /// The relation is a non-indexed stream already sorted by lower
    /// y-coordinate (for example the output of a previous sort), so a join
    /// can skip the sorting step.
    SortedStream(&'a ItemStream),
    /// The relation is registered in a dataset catalog, with a persisted
    /// index *and* a persisted sorted run: every algorithm skips its
    /// preparation I/O (no re-sort, no index build, no bbox scan).
    Cataloged(CatalogedInput<'a>),
}

impl<'a> JoinInput<'a> {
    /// Number of MBRs in the relation.
    pub fn len(&self) -> u64 {
        match self {
            JoinInput::Indexed(tree) => tree.num_items(),
            JoinInput::Stream(s) | JoinInput::SortedStream(s) => s.len(),
            JoinInput::Cataloged(c) => c.sorted.len(),
        }
    }

    /// Returns `true` if the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if the relation has an R-tree.
    pub fn is_indexed(&self) -> bool {
        matches!(self, JoinInput::Indexed(_) | JoinInput::Cataloged(_))
    }

    /// Number of disk pages holding the relation's raw data (for indexed
    /// inputs this is the size of the index, the quantity the paper's cost
    /// comparison in Section 6.3 uses).
    pub fn pages(&self) -> u64 {
        match self {
            JoinInput::Indexed(tree) => tree.nodes(),
            JoinInput::Stream(s) | JoinInput::SortedStream(s) => s.pages(),
            JoinInput::Cataloged(c) => c.tree.nodes(),
        }
    }

    /// Bounding box of the relation, if it is known without scanning
    /// (indexed inputs know it from the root directory rectangle, cataloged
    /// inputs from their registration record).
    pub fn known_bbox(&self) -> Option<Rect> {
        match self {
            JoinInput::Indexed(tree) => Some(tree.bbox()),
            JoinInput::Cataloged(c) => Some(c.bbox),
            _ => None,
        }
    }

    /// Materialises the relation as a y-sorted stream plus its bounding box.
    ///
    /// `bbox_hint` is honoured for *every* variant: a caller that already
    /// knows the data-space extent (a region-hinted join, an indexed input's
    /// root rectangle) gets it echoed back instead of the bbox folded during
    /// the sort, so downstream consumers see a consistent region.
    ///
    /// * A `SortedStream` is returned as-is (its bounding box is scanned
    ///   only if `bbox_hint` is absent).
    /// * A `Stream` is sorted with the external mergesort.
    /// * An `Indexed` relation is *dumped*: every node is read once in page
    ///   order (largely sequential I/O on a bulk-loaded tree), the leaf
    ///   rectangles are written to a scratch stream, and that stream is
    ///   sorted. This is what "SSSJ ignores the index" costs.
    pub fn to_sorted_stream(
        &self,
        env: &mut SimEnv,
        bbox_hint: Option<Rect>,
    ) -> Result<(ItemStream, Rect)> {
        match self {
            JoinInput::SortedStream(s) => {
                let bbox = match bbox_hint {
                    Some(b) => b,
                    None => scan_bbox(env, s)?,
                };
                Ok(((*s).clone(), bbox))
            }
            JoinInput::Stream(s) => {
                let (sorted, stats) = extsort::external_sort_by_key(env, s, usj_geom::Item::sweep_key, usj_geom::Item::cmp_by_lower_y)?;
                Ok((sorted, bbox_hint.unwrap_or(stats.bbox)))
            }
            JoinInput::Indexed(tree) => {
                let dumped = dump_tree(env, tree)?;
                let (sorted, stats) = extsort::external_sort_by_key(
                    env,
                    &dumped,
                    usj_geom::Item::sweep_key,
                    usj_geom::Item::cmp_by_lower_y,
                )?;
                Ok((sorted, bbox_hint.unwrap_or(stats.bbox)))
            }
            // The sorted run was persisted at registration: hand it back
            // without any I/O at all. This is the catalog's headline saving.
            JoinInput::Cataloged(c) => Ok((c.sorted.clone(), bbox_hint.unwrap_or(c.bbox))),
        }
    }

    /// Materialises the relation as an *unsorted* stream (used by PBSM, which
    /// partitions rather than sorts).
    pub fn to_stream(&self, env: &mut SimEnv) -> Result<ItemStream> {
        match self {
            JoinInput::Stream(s) | JoinInput::SortedStream(s) => Ok((*s).clone()),
            JoinInput::Indexed(tree) => dump_tree(env, tree),
            // Sorted is a perfectly good unsorted stream too, and it is
            // already on the device.
            JoinInput::Cataloged(c) => Ok(c.sorted.clone()),
        }
    }
}

/// Reads every leaf of a tree once, in page order, writing the data
/// rectangles to a fresh stream.
fn dump_tree(env: &mut SimEnv, tree: &RTree) -> Result<ItemStream> {
    let mut writer = ItemStreamWriter::with_default_block(env);
    // Nodes were bulk-loaded bottom-up, so every page from the first leaf to
    // the root belongs to the tree; visiting them in page order is the
    // sequential scan a real system would do. The root is the last page, so
    // the leaves come first.
    let first = tree.root() + 1 - tree.nodes();
    for page in first..=tree.root() {
        let node = tree.read_node(env, page)?;
        if node.kind == NodeKind::Leaf {
            for e in &node.entries {
                env.charge(CpuOp::ItemMove, 1);
                writer.push(env, e.as_item())?;
            }
        }
    }
    writer.finish(env)
}

/// One sequential pass computing the bounding box of a stream.
fn scan_bbox(env: &mut SimEnv, s: &ItemStream) -> Result<Rect> {
    let mut bbox = Rect::empty();
    let mut r = s.reader();
    while let Some(it) = r.next(env)? {
        env.charge(CpuOp::RectTest, 1);
        bbox = bbox.union(&it.rect);
    }
    if bbox.is_empty() {
        bbox = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    }
    Ok(bbox)
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn items(n: u32) -> Vec<Item> {
        (0..n)
            .map(|i| {
                let f = (i * 7 % 97) as f32;
                Item::new(Rect::from_coords(f, f * 0.5, f + 2.0, f * 0.5 + 2.0), i)
            })
            .collect()
    }

    #[test]
    fn stream_input_reports_len_and_pages() {
        let mut env = env();
        let data = items(1000);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let input = JoinInput::Stream(&s);
        assert_eq!(input.len(), 1000);
        assert!(!input.is_empty());
        assert!(!input.is_indexed());
        assert_eq!(input.pages(), s.pages());
        assert!(input.known_bbox().is_none());
    }

    #[test]
    fn indexed_input_reports_tree_properties() {
        let mut env = env();
        let data = items(1000);
        let tree = RTree::bulk_load(&mut env, &data).unwrap();
        let input = JoinInput::Indexed(&tree);
        assert_eq!(input.len(), 1000);
        assert!(input.is_indexed());
        assert_eq!(input.pages(), tree.nodes());
        assert_eq!(input.known_bbox(), Some(tree.bbox()));
    }

    #[test]
    fn to_sorted_stream_sorts_all_variants_identically() {
        let mut env = env();
        let data = items(2000);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let tree = RTree::bulk_load(&mut env, &data).unwrap();

        let (from_stream, bbox1) = JoinInput::Stream(&s).to_sorted_stream(&mut env, None).unwrap();
        let (from_tree, bbox2) = JoinInput::Indexed(&tree).to_sorted_stream(&mut env, None).unwrap();

        let a = from_stream.read_all(&mut env).unwrap();
        let b = from_tree.read_all(&mut env).unwrap();
        assert_eq!(a.len(), data.len());
        assert_eq!(b.len(), data.len());
        assert!(a.windows(2).all(|w| w[0].rect.lo.y <= w[1].rect.lo.y));
        assert!(b.windows(2).all(|w| w[0].rect.lo.y <= w[1].rect.lo.y));
        // Same multiset of ids regardless of the source representation.
        let mut ia: Vec<u32> = a.iter().map(|i| i.id).collect();
        let mut ib: Vec<u32> = b.iter().map(|i| i.id).collect();
        ia.sort_unstable();
        ib.sort_unstable();
        assert_eq!(ia, ib);
        // Both bounding boxes cover all the data.
        for it in &data {
            assert!(bbox1.contains(&it.rect));
            assert!(bbox2.contains(&it.rect));
        }
    }

    #[test]
    fn bbox_hint_is_honoured_for_stream_and_indexed_variants() {
        let mut env = env();
        let data = items(300);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let tree = RTree::bulk_load(&mut env, &data).unwrap();
        let hint = Rect::from_coords(-5.0, -5.0, 500.0, 500.0);
        let (_, b1) = JoinInput::Stream(&s).to_sorted_stream(&mut env, Some(hint)).unwrap();
        let (_, b2) = JoinInput::Indexed(&tree)
            .to_sorted_stream(&mut env, Some(hint))
            .unwrap();
        assert_eq!(b1, hint);
        assert_eq!(b2, hint);
    }

    #[test]
    fn sorted_stream_passthrough_uses_hint_without_scanning() {
        let mut env = env();
        let mut data = items(500);
        data.sort_unstable_by(Item::cmp_by_lower_y);
        let s = ItemStream::from_items(&mut env, &data).unwrap();
        let hint = Rect::from_coords(-10.0, -10.0, 1000.0, 1000.0);
        let m = env.begin();
        let (out, bbox) = JoinInput::SortedStream(&s)
            .to_sorted_stream(&mut env, Some(hint))
            .unwrap();
        let (io, _) = env.since(&m);
        assert_eq!(io.pages_read, 0, "hinted pass-through must not re-scan");
        assert_eq!(bbox, hint);
        assert_eq!(out.len(), 500);
    }
}
