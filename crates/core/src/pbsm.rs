//! Partition-Based Spatial Merge join (PBSM).
//!
//! PBSM (Patel & DeWitt, SIGMOD 1996 — Section 3.2 of the paper) is a
//! hash-join: the data space is covered by a fine grid of *tiles*, the tiles
//! are assigned to a much smaller number of *partitions* round-robin, every
//! rectangle is replicated into each partition whose tiles it overlaps, and
//! each partition is then joined in memory with a plane sweep. Replication
//! can report the same pair in several partitions, so a pair is emitted only
//! in the partition owning the tile that contains the pair's *reference
//! point* (the upper-left corner of the intersection).
//!
//! Following the implementation note in the paper, the default tile grid is
//! 128 × 128 (the 32 × 32 grid suggested originally produced overfull
//! partitions on the TIGER data); the ablation harness exercises both.

use usj_geom::Rect;
use usj_io::{CpuOp, ItemStream, ItemStreamWriter, Result, SimEnv};
use usj_sweep::{sweep_join, ForwardSweep};

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::{JoinResult, MemoryStats};
use crate::sink::PairSink;
use crate::JoinOperator;

/// Configuration of the PBSM join.
///
/// # Example
///
/// PBSM partitions flat inputs over a tile grid and sweeps each partition
/// in memory; replicated pairs are suppressed by the reference-point test,
/// so every intersecting pair is reported exactly once.
///
/// ```
/// use usj_core::{JoinInput, JoinOperator, PbsmJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// // Long crossing rectangles overlap many tiles and partitions each.
/// let horiz: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(0.0, i as f32, 10.0, i as f32 + 0.1), i))
///     .collect();
/// let vert: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, 10.0), 100 + i))
///     .collect();
/// let l = ItemStream::from_items(&mut env, &horiz).unwrap();
/// let r = ItemStream::from_items(&mut env, &vert).unwrap();
/// let result = PbsmJoin::default()
///     .with_partitions(4)
///     .run(&mut env, JoinInput::Stream(&l), JoinInput::Stream(&r))
///     .unwrap();
/// assert_eq!(result.pairs, 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PbsmJoin {
    /// Tiles per side of the tile grid (the paper uses 128 after finding
    /// 32 × 32 insufficient).
    pub tiles_per_side: usize,
    /// Optional explicit number of partitions; when `None` it is derived from
    /// the input size and the internal-memory limit.
    pub partitions: Option<usize>,
    /// Optional bounding box of the data space; when `None` one sequential
    /// scan over both inputs computes it.
    pub region_hint: Option<Rect>,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl Default for PbsmJoin {
    fn default() -> Self {
        PbsmJoin {
            tiles_per_side: 128,
            partitions: None,
            region_hint: None,
            predicate: Predicate::default(),
        }
    }
}

impl PbsmJoin {
    /// Sets the tile grid resolution (builder style).
    pub fn with_tiles_per_side(mut self, tiles: usize) -> Self {
        self.tiles_per_side = tiles.max(1);
        self
    }

    /// Sets the number of partitions explicitly (builder style).
    pub fn with_partitions(mut self, p: usize) -> Self {
        self.partitions = Some(p.max(1));
        self
    }

    /// Sets the data-space bounding box (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }
}

/// Geometry of the tile grid.
struct TileGrid {
    region: Rect,
    tiles_per_side: usize,
    partitions: usize,
}

impl TileGrid {
    fn tile_of(&self, x: f32, y: f32) -> usize {
        let n = self.tiles_per_side;
        let w = self.region.width().max(f32::MIN_POSITIVE);
        let h = self.region.height().max(f32::MIN_POSITIVE);
        let tx = (((x - self.region.lo.x) / w) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        let ty = (((y - self.region.lo.y) / h) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        ty * n + tx
    }

    /// Tile index range `(tx0, ty0, tx1, ty1)` overlapped by a rectangle.
    fn tile_range(&self, r: &Rect) -> (usize, usize, usize, usize) {
        let n = self.tiles_per_side;
        let lo = self.tile_of(r.lo.x, r.lo.y);
        let hi = self.tile_of(r.hi.x, r.hi.y);
        (lo % n, lo / n, hi % n, hi / n)
    }

    /// Round-robin assignment of tiles to partitions (row-major enumeration).
    fn partition_of_tile(&self, tile: usize) -> usize {
        tile % self.partitions
    }

    /// Distinct partitions a rectangle must be replicated to.
    fn partitions_of(&self, r: &Rect, out: &mut Vec<usize>) {
        out.clear();
        let (tx0, ty0, tx1, ty1) = self.tile_range(r);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let p = self.partition_of_tile(ty * self.tiles_per_side + tx);
                if !out.contains(&p) {
                    out.push(p);
                }
                if out.len() == self.partitions {
                    return;
                }
            }
        }
    }
}

impl JoinOperator for PbsmJoin {
    fn name(&self) -> &'static str {
        "PBSM"
    }

    fn predicate(&self) -> Predicate {
        self.predicate
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        let predicate = self.predicate;
        let eps = predicate.epsilon();

        let left_stream = left.to_stream(env)?;
        let right_stream = right.to_stream(env)?;

        // Data-space bounding box: use the hint or one sequential scan. The
        // grid is grown by ε so the expanded left rectangles it partitions
        // stay covered.
        let region = match self.region_hint {
            Some(r) => r,
            None => {
                let mut bbox = Rect::empty();
                for s in [&left_stream, &right_stream] {
                    let mut r = s.reader();
                    while let Some(it) = r.next(env)? {
                        env.charge(CpuOp::RectTest, 1);
                        bbox = bbox.union(&it.rect);
                    }
                }
                if bbox.is_empty() {
                    Rect::from_coords(0.0, 0.0, 1.0, 1.0)
                } else {
                    bbox
                }
            }
        }
        .expanded(eps);

        // Partition count: both partitions of a pair must fit in memory
        // together with the sweep working space, so size each partition to a
        // quarter of the internal memory.
        let total_bytes = left_stream.data_bytes() + right_stream.data_bytes();
        let partitions = self
            .partitions
            .unwrap_or_else(|| ((total_bytes as usize).div_ceil(env.memory_limit / 4)).max(1));
        let grid = TileGrid {
            region,
            tiles_per_side: self.tiles_per_side,
            partitions,
        };

        // Phase 1: distribute both inputs to the partitions (replicating
        // rectangles that overlap several partitions' tiles). Writing to many
        // partition streams at once is the "non-sequential write pass". Left
        // rectangles are ε-expanded *before* partitioning so that near-miss
        // pairs meet in at least one partition.
        let mut replicated = 0u64;
        let mut distribute =
            |env: &mut SimEnv, stream: &ItemStream, left_side: bool| -> Result<Vec<ItemStream>> {
                let mut writers: Vec<ItemStreamWriter> = (0..partitions)
                    .map(|_| ItemStreamWriter::new(env, 8))
                    .collect();
                let mut reader = stream.reader();
                let mut targets = Vec::with_capacity(4);
                while let Some(mut it) = reader.next(env)? {
                    if left_side {
                        it = predicate.expand_left(it);
                    }
                    grid.partitions_of(&it.rect, &mut targets);
                    env.charge(CpuOp::ItemMove, targets.len() as u64);
                    replicated += targets.len() as u64 - 1;
                    for &p in &targets {
                        writers[p].push(env, it)?;
                    }
                }
                writers.into_iter().map(|w| w.finish(env)).collect()
            };
        let left_parts = distribute(env, &left_stream, true)?;
        let right_parts = distribute(env, &right_stream, false)?;

        // Phase 2: join each partition in memory with the forward sweep,
        // suppressing duplicates with the reference-point test.
        let mut pairs = 0u64;
        let mut done = false;
        let mut sweep_total = usj_sweep::SweepJoinStats::default();
        let mut max_partition_bytes = 0usize;
        for p in 0..partitions {
            if done {
                break;
            }
            let l = left_parts[p].read_all(env)?;
            let r = right_parts[p].read_all(env)?;
            if l.is_empty() || r.is_empty() {
                continue;
            }
            max_partition_bytes = max_partition_bytes
                .max((l.len() + r.len()) * std::mem::size_of::<usj_geom::Item>());
            let stats = sweep_join::<ForwardSweep, _>(&l, &r, |a, b| {
                // Reference point: lower-left corner of the intersection of
                // the (expanded) rectangles — report the pair only in the
                // partition owning its tile.
                if done {
                    return;
                }
                let ref_x = a.rect.lo.x.max(b.rect.lo.x);
                let ref_y = a.rect.lo.y.max(b.rect.lo.y);
                let tile = grid.tile_of(ref_x, ref_y);
                if grid.partition_of_tile(tile) == p && predicate.accepts(&a.rect, &b.rect) {
                    if sink.emit(a.id, b.id).is_break() {
                        done = true;
                    } else {
                        pairs += 1;
                    }
                }
            });
            env.charge(CpuOp::RectTest, stats.rect_tests);
            env.charge(CpuOp::Compare, (l.len() + r.len()) as u64);
            sweep_total.merge(&stats);
        }
        env.charge(CpuOp::OutputPair, pairs);
        sweep_total.pairs = pairs;

        let (io, cpu) = env.since(&measurement);
        let _ = replicated;
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: 0,
            sweep: sweep_total,
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: sweep_total.max_structure_bytes,
                other_bytes: max_partition_bytes,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid_and_crossers(n: u32) -> (Vec<Item>, Vec<Item>) {
        let horiz: Vec<Item> = (0..n)
            .map(|i| Item::new(Rect::from_coords(0.0, i as f32, n as f32, i as f32 + 0.1), i))
            .collect();
        let vert: Vec<Item> = (0..n)
            .map(|i| {
                Item::new(
                    Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, n as f32),
                    1000 + i,
                )
            })
            .collect();
        (horiz, vert)
    }

    #[test]
    fn no_duplicate_pairs_despite_replication() {
        let mut env = env();
        // Long rectangles overlap many tiles and partitions; every pair must
        // still be reported exactly once.
        let (h, v) = grid_and_crossers(25);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let (res, mut pairs) = PbsmJoin::default()
            .with_partitions(7)
            .run_collect(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 625);
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 625, "duplicate pairs were reported");
    }

    #[test]
    fn single_partition_behaves_like_plain_sweep() {
        let mut env = env();
        let (h, v) = grid_and_crossers(10);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let res = PbsmJoin::default()
            .with_partitions(1)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 100);
    }

    #[test]
    fn coarse_and_fine_tile_grids_agree() {
        let mut env = env();
        let (h, v) = grid_and_crossers(15);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let fine = PbsmJoin::default()
            .with_tiles_per_side(128)
            .with_partitions(5)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        let coarse = PbsmJoin::default()
            .with_tiles_per_side(32)
            .with_partitions(5)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(fine.pairs, coarse.pairs);
    }

    #[test]
    fn empty_input_is_handled() {
        let mut env = env();
        let empty = ItemStream::from_items(&mut env, &[]).unwrap();
        let (h, _) = grid_and_crossers(5);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let res = PbsmJoin::default()
            .run(&mut env, JoinInput::Stream(&empty), JoinInput::Stream(&sh))
            .unwrap();
        assert_eq!(res.pairs, 0);
    }

    #[test]
    fn region_hint_skips_the_extra_scan() {
        let mut env = env();
        let (h, v) = grid_and_crossers(10);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let hinted = PbsmJoin::default()
            .with_region(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
            .with_partitions(2);
        let unhinted = PbsmJoin::default().with_partitions(2);
        let a = hinted
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        let b = unhinted
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert!(a.io.pages_read < b.io.pages_read);
    }
}
