//! Partition-Based Spatial Merge join (PBSM).
//!
//! PBSM (Patel & DeWitt, SIGMOD 1996 — Section 3.2 of the paper) is a
//! hash-join: the data space is covered by a fine grid of *tiles*, the tiles
//! are assigned to a much smaller number of *partitions* round-robin, every
//! rectangle is replicated into each partition whose tiles it overlaps, and
//! each partition is then joined in memory with a plane sweep. Replication
//! can report the same pair in several partitions, so a pair is emitted only
//! in the partition owning the tile that contains the pair's *reference
//! point* (the upper-left corner of the intersection).
//!
//! Following the implementation note in the paper, the default tile grid is
//! 128 × 128 (the 32 × 32 grid suggested originally produced overfull
//! partitions on the TIGER data); the ablation harness exercises both.
//!
//! ## Memory-adaptive repartitioning
//!
//! Partition sizing is an estimate; a skewed input can put arbitrarily many
//! rectangles into one tile, and the original PBSM answers by *recursively
//! repartitioning* any partition that does not fit in memory. This
//! implementation does the same under the memory governor: before a
//! partition is loaded, its bytes are claimed from the
//! [`MemoryGauge`](usj_io::MemoryGauge); if the claim fails, the partition
//! is re-replicated over a fresh tile grid covering *its own* bounding box
//! (so a cluster that fell into one parent tile spreads out again), with the
//! reference-point test applied at every level of the split so no pair is
//! duplicated or lost. Indivisible clusters (identical rectangles) fall back
//! to a memory-bounded chunked sweep that streams one side past the other.

use usj_geom::{Item, Rect, ITEM_BYTES};
use usj_io::{CpuOp, ItemStream, ItemStreamWriter, Result, SimEnv, PAGE_SIZE};
use usj_sweep::{sweep_join_eps_with, ForwardSweep, SweepJoinStats, SweepScratch};

use crate::input::JoinInput;
use crate::predicate::Predicate;
use crate::result::{JoinResult, MemoryStats};
use crate::sink::PairSink;
use crate::JoinOperator;

/// Configuration of the PBSM join.
///
/// # Example
///
/// PBSM partitions flat inputs over a tile grid and sweeps each partition
/// in memory; replicated pairs are suppressed by the reference-point test,
/// so every intersecting pair is reported exactly once.
///
/// ```
/// use usj_core::{JoinInput, JoinOperator, PbsmJoin};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// // Long crossing rectangles overlap many tiles and partitions each.
/// let horiz: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(0.0, i as f32, 10.0, i as f32 + 0.1), i))
///     .collect();
/// let vert: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, 10.0), 100 + i))
///     .collect();
/// let l = ItemStream::from_items(&mut env, &horiz).unwrap();
/// let r = ItemStream::from_items(&mut env, &vert).unwrap();
/// let result = PbsmJoin::default()
///     .with_partitions(4)
///     .run(&mut env, JoinInput::Stream(&l), JoinInput::Stream(&r))
///     .unwrap();
/// assert_eq!(result.pairs, 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PbsmJoin {
    /// Tiles per side of the tile grid (the paper uses 128 after finding
    /// 32 × 32 insufficient).
    pub tiles_per_side: usize,
    /// Optional explicit number of partitions; when `None` it is derived from
    /// the input size and the internal-memory limit.
    pub partitions: Option<usize>,
    /// Optional bounding box of the data space; when `None` one sequential
    /// scan over both inputs computes it.
    pub region_hint: Option<Rect>,
    /// The pair-selection predicate (default: MBR intersection).
    pub predicate: Predicate,
}

impl Default for PbsmJoin {
    fn default() -> Self {
        PbsmJoin {
            tiles_per_side: 128,
            partitions: None,
            region_hint: None,
            predicate: Predicate::default(),
        }
    }
}

impl PbsmJoin {
    /// Sets the tile grid resolution (builder style).
    pub fn with_tiles_per_side(mut self, tiles: usize) -> Self {
        self.tiles_per_side = tiles.max(1);
        self
    }

    /// Sets the number of partitions explicitly (builder style).
    pub fn with_partitions(mut self, p: usize) -> Self {
        self.partitions = Some(p.max(1));
        self
    }

    /// Sets the data-space bounding box (builder style).
    pub fn with_region(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Sets the join predicate (builder style).
    pub fn with_predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }
}

/// Recursion limit of the repartitioning (beyond it the chunked fallback
/// takes over; each level shrinks the region to the overfull partition's
/// bounding box, so eight levels outrun `f32` resolution anyway).
const MAX_SPLIT_DEPTH: usize = 8;

/// Fan-out of one repartitioning level.
const SPLIT_PARTITIONS: usize = 4;

/// Logical block size (in pages) of the sub-partition scratch streams.
const SPLIT_PAGES_PER_BLOCK: u64 = 2;

/// Geometry of the tile grid.
#[derive(Debug, Clone)]
struct TileGrid {
    region: Rect,
    tiles_per_side: usize,
    partitions: usize,
}

impl TileGrid {
    fn tile_of(&self, x: f32, y: f32) -> usize {
        let n = self.tiles_per_side;
        let w = self.region.width().max(f32::MIN_POSITIVE);
        let h = self.region.height().max(f32::MIN_POSITIVE);
        let tx = (((x - self.region.lo.x) / w) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        let ty = (((y - self.region.lo.y) / h) * n as f32).clamp(0.0, n as f32 - 1.0) as usize;
        ty * n + tx
    }

    /// Tile index range `(tx0, ty0, tx1, ty1)` overlapped by a rectangle.
    fn tile_range(&self, r: &Rect) -> (usize, usize, usize, usize) {
        let n = self.tiles_per_side;
        let lo = self.tile_of(r.lo.x, r.lo.y);
        let hi = self.tile_of(r.hi.x, r.hi.y);
        (lo % n, lo / n, hi % n, hi / n)
    }

    /// Round-robin assignment of tiles to partitions (row-major enumeration).
    fn partition_of_tile(&self, tile: usize) -> usize {
        tile % self.partitions
    }

    /// Distinct partitions a rectangle must be replicated to.
    fn partitions_of(&self, r: &Rect, out: &mut Vec<usize>) {
        out.clear();
        let (tx0, ty0, tx1, ty1) = self.tile_range(r);
        for ty in ty0..=ty1 {
            for tx in tx0..=tx1 {
                let p = self.partition_of_tile(ty * self.tiles_per_side + tx);
                if !out.contains(&p) {
                    out.push(p);
                }
                if out.len() == self.partitions {
                    return;
                }
            }
        }
    }
}

impl JoinOperator for PbsmJoin {
    fn name(&self) -> &'static str {
        "PBSM"
    }

    fn predicate(&self) -> Predicate {
        self.predicate
    }

    fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let measurement = env.begin();
        env.memory.begin_phase();
        let predicate = self.predicate;
        let eps = predicate.epsilon();

        let left_stream = left.to_stream(env)?;
        let right_stream = right.to_stream(env)?;

        // Data-space bounding box: the hint if given; otherwise union the
        // inputs' known bounding boxes (index root rectangles, catalog
        // registration records) and scan only the sides whose extent is
        // genuinely unknown. The grid is grown by ε so the expanded left
        // rectangles it partitions stay covered.
        let region = match self.region_hint {
            Some(r) => r,
            None => {
                let mut bbox = Rect::empty();
                for (input, stream) in [(&left, &left_stream), (&right, &right_stream)] {
                    match input.known_bbox() {
                        Some(b) => bbox = bbox.union(&b),
                        None => {
                            let mut r = stream.reader();
                            while let Some(it) = r.next(env)? {
                                env.charge(CpuOp::RectTest, 1);
                                bbox = bbox.union(&it.rect);
                            }
                        }
                    }
                }
                if bbox.is_empty() {
                    Rect::from_coords(0.0, 0.0, 1.0, 1.0)
                } else {
                    bbox
                }
            }
        }
        .expanded(eps);

        // Partition count: both partitions of a pair must fit in memory
        // together with the sweep working space, so size each partition to a
        // quarter of the internal memory. The fan-out is additionally capped
        // so the distribution writers' block buffers (one logical block per
        // partition) fit in that same quarter — partitions that end up
        // overfull are split recursively below instead.
        let total_bytes = left_stream.data_bytes() + right_stream.data_bytes();
        let max_fanout = ((env.memory_limit / 4) / PAGE_SIZE).max(1);
        let partitions = self
            .partitions
            .unwrap_or_else(|| ((total_bytes as usize).div_ceil(env.memory_limit / 4)).max(1))
            .min(max_fanout);
        let writer_ppb = (((env.memory_limit / 4) / PAGE_SIZE) / partitions).clamp(1, 8) as u64;
        let grid = TileGrid {
            region,
            tiles_per_side: self.tiles_per_side,
            partitions,
        };

        // Phase 1: distribute both inputs to the partitions (replicating
        // rectangles that overlap several partitions' tiles). Writing to many
        // partition streams at once is the "non-sequential write pass". Left
        // rectangles are ε-expanded *before* partitioning so that near-miss
        // pairs meet in at least one partition.
        let mut replicated = 0u64;
        let mut distribute = |env: &mut SimEnv,
                              stream: &ItemStream,
                              left_side: bool|
         -> Result<(Vec<ItemStream>, Vec<Rect>)> {
            let mut writers: Vec<ItemStreamWriter> = (0..partitions)
                .map(|_| ItemStreamWriter::new(env, writer_ppb))
                .collect();
            // Per-partition bounding boxes, folded for free during the
            // write pass: a later recursive split re-grids over exactly this
            // box without a dedicated scan.
            let mut bboxes = vec![Rect::empty(); partitions];
            let mut reader = stream.reader();
            let mut targets = Vec::with_capacity(4);
            while let Some(mut it) = reader.next(env)? {
                if left_side {
                    it = predicate.expand_left(it);
                }
                grid.partitions_of(&it.rect, &mut targets);
                env.charge(CpuOp::ItemMove, targets.len() as u64);
                replicated += targets.len() as u64 - 1;
                for &p in &targets {
                    bboxes[p] = bboxes[p].union(&it.rect);
                    writers[p].push(env, it)?;
                }
            }
            let streams = writers
                .into_iter()
                .map(|w| w.finish(env))
                .collect::<Result<Vec<_>>>()?;
            Ok((streams, bboxes))
        };
        let (left_parts, left_bboxes) = distribute(env, &left_stream, true)?;
        let (right_parts, right_bboxes) = distribute(env, &right_stream, false)?;

        // Phase 2: join each partition in memory with the forward sweep,
        // suppressing duplicates with the reference-point test; partitions
        // that do not fit the memory budget are repartitioned recursively.
        let mut run = PbsmRun {
            predicate,
            tiles_per_side: self.tiles_per_side,
            pairs: 0,
            done: false,
            sweep_total: SweepJoinStats::default(),
            max_partition_bytes: 0,
            sink,
            load_left: Vec::new(),
            load_right: Vec::new(),
            scratch: SweepScratch::new(),
        };
        let mut path = vec![(grid, 0usize)];
        for p in 0..partitions {
            if run.done {
                break;
            }
            path[0].1 = p;
            let bbox = left_bboxes[p].union(&right_bboxes[p]);
            run.join_partition(env, &mut path, &left_parts[p], &right_parts[p], bbox, 0)?;
        }
        env.charge(CpuOp::OutputPair, run.pairs);
        let pairs = run.pairs;
        let mut sweep_total = run.sweep_total;
        sweep_total.pairs = pairs;
        let max_partition_bytes = run.max_partition_bytes;

        let (io, cpu) = env.since(&measurement);
        let _ = replicated;
        Ok(JoinResult {
            pairs,
            io,
            cpu,
            index_page_requests: 0,
            sweep: sweep_total,
            memory: MemoryStats {
                priority_queue_bytes: 0,
                sweep_structure_bytes: sweep_total.max_structure_bytes,
                other_bytes: max_partition_bytes,
                peak_bytes: env.memory.peak(),
            },
        })
    }
}

/// The shared pair-acceptance path of the in-memory sweep and the chunked
/// fallback. Reference point: lower-left corner of the intersection of the
/// (expanded) rectangles — the pair is reported only when that point's tile
/// belongs to the chosen partition at *every* split level of `path`, which
/// keeps the output duplicate-free under arbitrary re-replication; the
/// predicate refines the surviving candidates before they reach the sink.
fn report_candidate(
    predicate: Predicate,
    path: &[(TileGrid, usize)],
    sink: &mut dyn PairSink,
    pairs: &mut u64,
    done: &mut bool,
    a: &Item,
    b: &Item,
) {
    if *done {
        return;
    }
    let ref_x = a.rect.lo.x.max(b.rect.lo.x);
    let ref_y = a.rect.lo.y.max(b.rect.lo.y);
    if !path
        .iter()
        .all(|(g, p)| g.partition_of_tile(g.tile_of(ref_x, ref_y)) == *p)
    {
        return;
    }
    if !predicate.accepts(&a.rect, &b.rect) {
        return;
    }
    if sink.emit(a.id, b.id).is_break() {
        *done = true;
    } else {
        *pairs += 1;
    }
}

/// Upper bound on the block-buffer bytes one reader over `s` will charge to
/// the gauge (one logical block, capped by the stream's total size).
fn reader_bound(s: &ItemStream) -> usize {
    (s.data_bytes() as usize).min(s.pages_per_block() as usize * PAGE_SIZE)
}

/// Mutable state threaded through the recursive partition joins.
struct PbsmRun<'a> {
    predicate: Predicate,
    tiles_per_side: usize,
    pairs: u64,
    done: bool,
    sweep_total: SweepJoinStats,
    max_partition_bytes: usize,
    sink: &'a mut dyn PairSink,
    /// Reusable partition-load buffers: one pair of scatter targets shared
    /// by every partition (and every recursion level) instead of two fresh
    /// vectors per partition.
    load_left: Vec<Item>,
    load_right: Vec<Item>,
    /// Reusable sorted-copy buffers of the per-partition sweeps.
    scratch: SweepScratch,
}

impl PbsmRun<'_> {
    /// Joins one (possibly nested) partition.
    ///
    /// `path` is the chain of `(grid, partition)` choices that led here; a
    /// pair is reported only when its reference point maps to the chosen
    /// partition at *every* level, which keeps the output duplicate-free
    /// under arbitrary re-replication. `bbox` covers the partition's data
    /// (folded during the distribution write pass) and seeds the grid of a
    /// recursive split.
    fn join_partition(
        &mut self,
        env: &mut SimEnv,
        path: &mut Vec<(TileGrid, usize)>,
        left: &ItemStream,
        right: &ItemStream,
        bbox: Rect,
        depth: usize,
    ) -> Result<()> {
        if self.done || left.is_empty() || right.is_empty() {
            return Ok(());
        }
        // In-memory envelope: the partition vectors, the sweep's sorted
        // copies and its active lists — 3× the data is a safe bound for the
        // copy-free forward sweep.
        let data = (left.data_bytes() + right.data_bytes()) as usize;
        let envelope = 3 * data + reader_bound(left) + reader_bound(right);
        if depth < MAX_SPLIT_DEPTH {
            if env.memory.headroom() >= envelope {
                // Claim the vectors/copies/active-list share; the stream
                // readers charge their own block buffers on top (the
                // envelope above left room for them).
                let _claim = env.memory.try_reserve(3 * data)?;
                return self.sweep_in_memory(env, path, left, right);
            }
            return self.split(env, path, left, right, bbox, depth);
        }
        self.chunked_fallback(env, path, left, right)
    }

    /// The fitting case: load both sides and run the plain in-memory sweep.
    fn sweep_in_memory(
        &mut self,
        env: &mut SimEnv,
        path: &[(TileGrid, usize)],
        left: &ItemStream,
        right: &ItemStream,
    ) -> Result<()> {
        let PbsmRun {
            predicate,
            sink,
            pairs,
            done,
            load_left,
            load_right,
            scratch,
            ..
        } = self;
        left.read_all_into(env, load_left)?;
        right.read_all_into(env, load_right)?;
        let loaded = load_left.len() + load_right.len();
        self.max_partition_bytes = self
            .max_partition_bytes
            .max(loaded * std::mem::size_of::<Item>());
        let stats = sweep_join_eps_with::<ForwardSweep, _>(load_left, load_right, 0.0, scratch, |a, b| {
            report_candidate(*predicate, path, &mut **sink, pairs, done, a, b)
        });
        env.charge(CpuOp::RectTest, stats.rect_tests);
        env.charge(CpuOp::Compare, loaded as u64);
        self.sweep_total.merge(&stats);
        Ok(())
    }

    /// The overflow case: re-replicate the partition over a finer grid that
    /// covers only *its* data (so a cluster confined to one parent tile
    /// spreads out) and recurse into the sub-partitions.
    fn split(
        &mut self,
        env: &mut SimEnv,
        path: &mut Vec<(TileGrid, usize)>,
        left: &ItemStream,
        right: &ItemStream,
        bbox: Rect,
        depth: usize,
    ) -> Result<()> {
        let sub = TileGrid {
            region: bbox,
            tiles_per_side: self.tiles_per_side,
            partitions: SPLIT_PARTITIONS,
        };
        let redistribute =
            |env: &mut SimEnv, stream: &ItemStream| -> Result<(Vec<ItemStream>, Vec<Rect>)> {
                let mut writers: Vec<ItemStreamWriter> = (0..SPLIT_PARTITIONS)
                    .map(|_| ItemStreamWriter::new(env, SPLIT_PAGES_PER_BLOCK))
                    .collect();
                let mut bboxes = vec![Rect::empty(); SPLIT_PARTITIONS];
                let mut reader = stream.reader();
                let mut targets = Vec::with_capacity(4);
                while let Some(it) = reader.next(env)? {
                    // Left rectangles were ε-expanded at the top-level
                    // distribution; no second expansion here.
                    sub.partitions_of(&it.rect, &mut targets);
                    env.charge(CpuOp::ItemMove, targets.len() as u64);
                    for &p in &targets {
                        bboxes[p] = bboxes[p].union(&it.rect);
                        writers[p].push(env, it)?;
                    }
                }
                let streams = writers
                    .into_iter()
                    .map(|w| w.finish(env))
                    .collect::<Result<Vec<_>>>()?;
                Ok((streams, bboxes))
            };
        let (left_parts, left_bboxes) = redistribute(env, left)?;
        let (right_parts, right_bboxes) = redistribute(env, right)?;
        for p in 0..SPLIT_PARTITIONS {
            if self.done {
                break;
            }
            let (ls, rs) = (&left_parts[p], &right_parts[p]);
            path.push((sub.clone(), p));
            if ls.len() == left.len() && rs.len() == right.len() {
                // The cluster is indivisible (e.g. identical rectangles):
                // splitting again cannot make progress, so stream it through
                // the memory-bounded chunked sweep instead.
                self.chunked_fallback(env, path, ls, rs)?;
            } else {
                let sub_bbox = left_bboxes[p].union(&right_bboxes[p]);
                self.join_partition(env, path, ls, rs, sub_bbox, depth + 1)?;
            }
            path.pop();
        }
        Ok(())
    }

    /// Last-resort path for partitions that cannot be split further: a
    /// block-nested sweep that loads one memory-sized chunk of the left side
    /// at a time and streams the right side past it. Memory stays bounded;
    /// the price is re-reading the right partition once per left chunk —
    /// charged I/O, exactly the degradation a real system would pay.
    fn chunked_fallback(
        &mut self,
        env: &mut SimEnv,
        path: &[(TileGrid, usize)],
        left: &ItemStream,
        right: &ItemStream,
    ) -> Result<()> {
        let avail = env
            .memory
            .headroom()
            .saturating_sub(reader_bound(left) + reader_bound(right));
        let chunk_bytes = (avail / 8).max(4 * 1024);
        let chunk_items = (chunk_bytes / ITEM_BYTES).max(1);
        // Two chunks plus the sweep's copies and active lists; the stream
        // readers charge their own block buffers out of the slack above.
        let _claim = env.memory.try_reserve(6 * chunk_bytes)?;
        let mut lr = left.reader();
        // One pair of chunk buffers for the whole block-nested loop.
        let mut lchunk: Vec<Item> = Vec::with_capacity(chunk_items);
        let mut rchunk: Vec<Item> = Vec::with_capacity(chunk_items);
        loop {
            lchunk.clear();
            while lchunk.len() < chunk_items {
                match lr.next(env)? {
                    Some(it) => lchunk.push(it),
                    None => break,
                }
            }
            if lchunk.is_empty() {
                return Ok(());
            }
            let mut rr = right.reader();
            loop {
                if self.done {
                    return Ok(());
                }
                rchunk.clear();
                while rchunk.len() < chunk_items {
                    match rr.next(env)? {
                        Some(it) => rchunk.push(it),
                        None => break,
                    }
                }
                if rchunk.is_empty() {
                    break;
                }
                let PbsmRun {
                    predicate,
                    sink,
                    pairs,
                    done,
                    scratch,
                    ..
                } = self;
                let stats = sweep_join_eps_with::<ForwardSweep, _>(&lchunk, &rchunk, 0.0, scratch, |a, b| {
                    report_candidate(*predicate, path, &mut **sink, pairs, done, a, b)
                });
                env.charge(CpuOp::RectTest, stats.rect_tests);
                env.charge(CpuOp::Compare, (lchunk.len() + rchunk.len()) as u64);
                self.sweep_total.merge(&stats);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::MachineConfig;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid_and_crossers(n: u32) -> (Vec<Item>, Vec<Item>) {
        let horiz: Vec<Item> = (0..n)
            .map(|i| Item::new(Rect::from_coords(0.0, i as f32, n as f32, i as f32 + 0.1), i))
            .collect();
        let vert: Vec<Item> = (0..n)
            .map(|i| {
                Item::new(
                    Rect::from_coords(i as f32, 0.0, i as f32 + 0.1, n as f32),
                    1000 + i,
                )
            })
            .collect();
        (horiz, vert)
    }

    #[test]
    fn no_duplicate_pairs_despite_replication() {
        let mut env = env();
        // Long rectangles overlap many tiles and partitions; every pair must
        // still be reported exactly once.
        let (h, v) = grid_and_crossers(25);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let (res, mut pairs) = PbsmJoin::default()
            .with_partitions(7)
            .run_collect(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 625);
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), 625, "duplicate pairs were reported");
    }

    #[test]
    fn single_partition_behaves_like_plain_sweep() {
        let mut env = env();
        let (h, v) = grid_and_crossers(10);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let res = PbsmJoin::default()
            .with_partitions(1)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(res.pairs, 100);
    }

    #[test]
    fn coarse_and_fine_tile_grids_agree() {
        let mut env = env();
        let (h, v) = grid_and_crossers(15);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let fine = PbsmJoin::default()
            .with_tiles_per_side(128)
            .with_partitions(5)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        let coarse = PbsmJoin::default()
            .with_tiles_per_side(32)
            .with_partitions(5)
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(fine.pairs, coarse.pairs);
    }

    #[test]
    fn empty_input_is_handled() {
        let mut env = env();
        let empty = ItemStream::from_items(&mut env, &[]).unwrap();
        let (h, _) = grid_and_crossers(5);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let res = PbsmJoin::default()
            .run(&mut env, JoinInput::Stream(&empty), JoinInput::Stream(&sh))
            .unwrap();
        assert_eq!(res.pairs, 0);
    }

    #[test]
    fn region_hint_skips_the_extra_scan() {
        let mut env = env();
        let (h, v) = grid_and_crossers(10);
        let sh = ItemStream::from_items(&mut env, &h).unwrap();
        let sv = ItemStream::from_items(&mut env, &v).unwrap();
        let hinted = PbsmJoin::default()
            .with_region(Rect::from_coords(0.0, 0.0, 10.0, 10.0))
            .with_partitions(2);
        let unhinted = PbsmJoin::default().with_partitions(2);
        let a = hinted
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        let b = unhinted
            .run(&mut env, JoinInput::Stream(&sh), JoinInput::Stream(&sv))
            .unwrap();
        assert_eq!(a.pairs, b.pairs);
        assert!(a.io.pages_read < b.io.pages_read);
    }
}
