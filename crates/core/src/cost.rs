//! The cost model that decides between indexed and non-indexed execution.
//!
//! The central practical conclusion of the paper (Section 6.3) is that using
//! an index whenever one is available is *not* always fastest: the
//! sort-based SSSJ reads and writes the data strictly sequentially, while an
//! index traversal pays a (mostly) random access per node. With the paper's
//! back-of-the-envelope figures — a random read costs about ten sequential
//! reads, a sequential write about 1.5 — SSSJ costs the equivalent of `6n`
//! sequential page reads while the index-based PQ costs `10·f·n`, where `f`
//! is the fraction of the index the join actually has to touch. The index
//! therefore wins only when `f` is below roughly 60 %.
//!
//! [`CostBasedJoin`] reproduces that decision: it estimates `f` from the
//! index directory (or from grid histograms for non-indexed inputs), prices
//! both strategies with the machine's actual parameters, and runs the cheaper
//! one — PQ with subtree pruning on the indexed path, SSSJ on the sorted
//! path.

use usj_geom::ITEM_BYTES;
use usj_io::{MachineConfig, Result, SimEnv, PAGE_SIZE};

use crate::input::JoinInput;
use crate::pq::PqJoin;
use crate::result::JoinResult;
use crate::sink::{CountSink, PairSink};
use crate::sssj::SssjJoin;
use crate::JoinOperator;

/// The execution strategy chosen by the cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinPlan {
    /// Traverse the available indexes with the (pruned) PQ join.
    Indexed,
    /// Ignore the indexes and run the sort-based SSSJ.
    NonIndexed,
}

/// The two estimated costs and the quantities they were derived from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostEstimate {
    /// Estimated seconds for the indexed (PQ) strategy.
    pub indexed_secs: f64,
    /// Estimated seconds for the non-indexed (SSSJ) strategy.
    pub non_indexed_secs: f64,
    /// Estimated fraction of the indexes' pages the join must touch.
    pub touched_fraction: f64,
    /// Break-even fraction for this machine (the paper's "~60 %" figure).
    pub crossover_fraction: f64,
}

impl CostEstimate {
    /// The plan implied by the estimate.
    pub fn plan(&self) -> JoinPlan {
        if self.indexed_secs <= self.non_indexed_secs {
            JoinPlan::Indexed
        } else {
            JoinPlan::NonIndexed
        }
    }
}

/// Break-even leaf fraction for a machine: the fraction of the index below
/// which the indexed strategy is expected to win against the sort-based one.
///
/// With the paper's Section 6.3 model (SSSJ ≈ `6n` sequential page reads,
/// indexed ≈ `f·n` random page reads) the crossover is
/// `f* = 6·t_seq / t_rand`, which lands around 0.6 for the disks of Table 1.
pub fn crossover_fraction(machine: &MachineConfig) -> f64 {
    let seq = machine.read_transfer_secs(PAGE_SIZE as u64);
    let rand = machine.random_access_secs() + seq;
    (6.0 * seq / rand).min(1.0)
}

/// The cost-based algorithm selector.
///
/// # Example
///
/// The selector estimates the indexed (PQ with pruning) and non-indexed
/// (SSSJ) strategies and runs the cheaper one, returning which plan it
/// picked alongside the estimate and the join result.
///
/// ```
/// use usj_core::{CostBasedJoin, JoinInput};
/// use usj_geom::{Item, Rect};
/// use usj_io::{MachineConfig, SimEnv};
/// use usj_rtree::RTree;
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let grid: Vec<Item> = (0..2500)
///     .map(|i| {
///         let (x, y) = ((i % 50) as f32, (i / 50) as f32);
///         Item::new(Rect::from_coords(x, y, x + 0.9, y + 0.9), i)
///     })
///     .collect();
/// // A localized probe set: only one corner of the grid participates.
/// let probes = vec![Item::new(Rect::from_coords(0.1, 0.1, 1.5, 1.5), 9000)];
///
/// let left = RTree::bulk_load(&mut env, &grid).unwrap();
/// let right = RTree::bulk_load(&mut env, &probes).unwrap();
/// let (plan, estimate, result) = CostBasedJoin::default()
///     .run(&mut env, JoinInput::Indexed(&left), JoinInput::Indexed(&right))
///     .unwrap();
/// // The unforced plan is whatever the estimate says is cheaper, and the
/// // localized probe touches only a fraction of the big index's leaves.
/// assert_eq!(plan, estimate.plan());
/// assert!(estimate.touched_fraction < 1.0);
/// // The probe overlaps the 2x2 block of cells (0..=1, 0..=1).
/// assert_eq!(result.pairs, 4);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CostBasedJoin {
    /// Force a specific plan instead of estimating (useful for experiments).
    pub force_plan: Option<JoinPlan>,
}

impl CostBasedJoin {
    /// Estimates both strategies for the given inputs.
    ///
    /// The estimate itself is cheap: for indexed inputs it inspects only the
    /// directory levels of the trees (`leaves_intersecting`), for non-indexed
    /// inputs it assumes the whole relation participates.
    pub fn estimate(
        &self,
        env: &mut SimEnv,
        left: &JoinInput<'_>,
        right: &JoinInput<'_>,
    ) -> Result<CostEstimate> {
        let machine = env.machine.clone();
        let seq_page = machine.read_transfer_secs(PAGE_SIZE as u64);
        let rand_page = machine.random_access_secs() + seq_page;

        // Non-indexed strategy: sort both relations and sweep. Following
        // Section 6.3: three read passes and two write passes over the raw
        // data, all sequential. A side that is *already* sorted (a
        // `SortedStream`, or a cataloged relation whose sorted run is
        // persisted) skips the sort entirely and pays only the sweep's one
        // read pass.
        let data_pages = |input: &JoinInput<'_>| -> f64 {
            (input.len() as f64 * ITEM_BYTES as f64 / PAGE_SIZE as f64).ceil()
        };
        let sorted_side_secs = |input: &JoinInput<'_>| -> f64 {
            let pages = data_pages(input);
            match input {
                JoinInput::SortedStream(_) | JoinInput::Cataloged(_) => pages * seq_page,
                _ => 3.0 * pages * seq_page + 2.0 * pages * seq_page * machine.write_penalty,
            }
        };
        let non_indexed_secs = sorted_side_secs(left) + sorted_side_secs(right);

        // Indexed strategy: every index page the join touches costs a random
        // read. The touched fraction is estimated from the directory
        // rectangles; a non-indexed side is charged a full sort instead.
        let mut indexed_secs = 0.0;
        let mut touched_pages = 0.0;
        let mut total_pages = 0.0;
        for (input, other) in [(left, right), (right, left)] {
            let tree = match input {
                JoinInput::Indexed(tree) => Some(*tree),
                JoinInput::Cataloged(c) => Some(c.tree),
                JoinInput::Stream(_) | JoinInput::SortedStream(_) => None,
            };
            match tree {
                Some(tree) => {
                    let frac = match other.known_bbox() {
                        Some(bbox) => {
                            let touched = tree.leaves_intersecting(env, &bbox)? as f64;
                            (touched / tree.num_leaves().max(1) as f64).clamp(0.0, 1.0)
                        }
                        // Without knowledge of the other side, assume the
                        // whole index participates (the conservative choice).
                        None => 1.0,
                    };
                    let pages = frac * tree.nodes() as f64;
                    indexed_secs += pages * rand_page;
                    touched_pages += pages;
                    total_pages += tree.nodes() as f64;
                }
                None => {
                    // This side has no index: PQ sorts it exactly as SSSJ
                    // would (or reads it straight if it is already sorted).
                    let pages = data_pages(input);
                    indexed_secs += sorted_side_secs(input);
                    touched_pages += pages;
                    total_pages += pages;
                }
            }
        }
        let touched_fraction = if total_pages > 0.0 {
            touched_pages / total_pages
        } else {
            0.0
        };

        Ok(CostEstimate {
            indexed_secs,
            non_indexed_secs,
            touched_fraction,
            crossover_fraction: crossover_fraction(&machine),
        })
    }

    /// Estimates, picks the cheaper strategy and runs it, streaming the
    /// output pairs to `sink`.
    pub fn run_with(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
        sink: &mut dyn PairSink,
    ) -> Result<(JoinPlan, CostEstimate, JoinResult)> {
        let estimate = self.estimate(env, &left, &right)?;
        let plan = self.force_plan.unwrap_or_else(|| estimate.plan());
        let result = match plan {
            JoinPlan::Indexed => PqJoin::default()
                .with_pruning()
                .run_with(env, left, right, sink)?,
            JoinPlan::NonIndexed => SssjJoin::default().run_with(env, left, right, sink)?,
        };
        Ok((plan, estimate, result))
    }

    /// Estimates, picks the cheaper strategy and runs it, discarding the
    /// output pairs.
    pub fn run(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'_>,
        right: JoinInput<'_>,
    ) -> Result<(JoinPlan, CostEstimate, JoinResult)> {
        self.run_with(env, left, right, &mut CountSink::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::{Item, Rect};
    use usj_io::{ItemStream, MachineConfig};
    use usj_rtree::RTree;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    #[test]
    fn crossover_matches_the_papers_model() {
        for m in MachineConfig::all() {
            let f = crossover_fraction(&m);
            assert!(
                (0.05..=1.0).contains(&f),
                "{}: implausible crossover {f}",
                m.name
            );
        }
        // The paper's "use the index below ~60 % of the leaves" figure comes
        // from its assumption that a random read costs about 10 sequential
        // reads — which is exactly the ratio of Machine 1's disk (8 ms seek
        // vs 0.8 ms for an 8 KiB page at 10 MB/s). The faster disks of
        // Machines 2 and 3 have much higher random/sequential ratios, so
        // their crossover is lower.
        let f1 = crossover_fraction(&MachineConfig::machine1());
        assert!((0.4..0.8).contains(&f1), "machine 1 crossover {f1}");
        let f3 = crossover_fraction(&MachineConfig::machine3());
        assert!(f3 < f1);
    }

    #[test]
    fn overlapping_relations_prefer_the_sort_based_plan() {
        let mut env = env();
        let a = grid(60, 3.0, 0.0, 0);
        let b = grid(30, 6.0, 0.0, 100_000);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let est = CostBasedJoin::default()
            .estimate(&mut env, &JoinInput::Indexed(&ta), &JoinInput::Indexed(&tb))
            .unwrap();
        // Both relations cover the same region, so the join touches
        // essentially the whole index and the sequential strategy wins.
        assert!(est.touched_fraction > 0.9);
        assert_eq!(est.plan(), JoinPlan::NonIndexed);
    }

    #[test]
    fn localized_join_prefers_the_indexed_plan() {
        let mut env = env();
        // Country-wide roads, but hydrography restricted to one small corner
        // (the paper's "hydrography of Minnesota vs roads of the US" case).
        let a = grid(80, 3.0, 0.0, 0);
        let b = grid(8, 3.0, 0.0, 100_000);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let est = CostBasedJoin::default()
            .estimate(&mut env, &JoinInput::Indexed(&ta), &JoinInput::Indexed(&tb))
            .unwrap();
        assert!(est.touched_fraction < 0.5, "fraction {}", est.touched_fraction);
        assert_eq!(est.plan(), JoinPlan::Indexed);

        // Running the chosen plan produces the correct result.
        let (plan, _, res) = CostBasedJoin::default()
            .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(plan, JoinPlan::Indexed);
        let brute: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        assert_eq!(res.pairs, brute);
    }

    #[test]
    fn forced_plans_are_respected_and_agree_on_results() {
        let mut env = env();
        let a = grid(25, 4.0, 0.0, 0);
        let b = grid(25, 4.0, 1.0, 100_000);
        let ta = RTree::bulk_load(&mut env, &a).unwrap();
        let tb = RTree::bulk_load(&mut env, &b).unwrap();
        let (plan_i, _, res_i) = CostBasedJoin {
            force_plan: Some(JoinPlan::Indexed),
        }
        .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
        .unwrap();
        let (plan_s, _, res_s) = CostBasedJoin {
            force_plan: Some(JoinPlan::NonIndexed),
        }
        .run(&mut env, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
        .unwrap();
        assert_eq!(plan_i, JoinPlan::Indexed);
        assert_eq!(plan_s, JoinPlan::NonIndexed);
        assert_eq!(res_i.pairs, res_s.pairs);
    }

    #[test]
    fn non_indexed_inputs_are_priced_as_sorts_on_both_sides() {
        let mut env = env();
        let a = grid(30, 4.0, 0.0, 0);
        let sa = ItemStream::from_items(&mut env, &a).unwrap();
        let b = grid(30, 4.0, 1.0, 100_000);
        let sb = ItemStream::from_items(&mut env, &b).unwrap();
        let est = CostBasedJoin::default()
            .estimate(&mut env, &JoinInput::Stream(&sa), &JoinInput::Stream(&sb))
            .unwrap();
        // With no index anywhere, both strategies degenerate to the same
        // sort-based cost.
        assert!((est.indexed_secs - est.non_indexed_secs).abs() < 1e-9);
        assert!((est.touched_fraction - 1.0).abs() < 1e-9);
    }
}
