//! Streaming output sinks for join results.
//!
//! Every join reports its output pairs through the [`PairSink`] trait rather
//! than a bare `FnMut(u32, u32)` callback. The crucial difference is that
//! [`PairSink::emit`] returns a [`ControlFlow`]: a sink can tell the producer
//! to *stop* — which turns LIMIT-style queries from "run the whole join and
//! throw most of it away" into genuine early termination that saves I/O.
//!
//! The provided sinks cover the common consumption patterns:
//!
//! * [`CountSink`] — count pairs without materialising them,
//! * [`CollectSink`] — gather the pairs into memory (tests, small results),
//! * [`LimitSink`] — pass through at most `n` pairs, then stop the join,
//! * [`SampleSink`] — keep every `k`-th pair (cheap result previews).
//!
//! Plain closures still work: any `FnMut(u32, u32)` is a `PairSink` that
//! never stops. Multi-way joins report through the analogous [`TripleSink`].

use std::ops::ControlFlow;

/// A consumer of join output pairs.
///
/// Implementations receive every `(left_id, right_id)` pair the join accepts
/// and steer the producer with the returned [`ControlFlow`]:
/// `ControlFlow::Continue(())` means the pair was consumed and more are
/// welcome; `ControlFlow::Break(())` means the pair was **rejected** and the
/// join must stop producing. Producers count only `Continue` pairs as
/// delivered, so [`crate::JoinResult::pairs`] always equals the number of
/// pairs a collecting sink actually holds — including for `LIMIT 0`.
pub trait PairSink {
    /// Offers one output pair, returning whether it was consumed and whether
    /// the join should continue.
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()>;
}

/// Every infallible pair callback is a sink that never stops the join.
impl<F: FnMut(u32, u32)> PairSink for F {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        self(left, right);
        ControlFlow::Continue(())
    }
}

/// A consumer of 3-way join output triples (see [`crate::multiway`]), with
/// the same contract as [`PairSink`]: `Break` rejects the offered triple and
/// stops the cascade.
pub trait TripleSink {
    /// Offers one output triple, returning whether it was consumed and
    /// whether the join should continue.
    fn emit(&mut self, a: u32, b: u32, c: u32) -> ControlFlow<()>;
}

/// Every infallible triple callback is a sink that never stops the join.
impl<F: FnMut(u32, u32, u32)> TripleSink for F {
    fn emit(&mut self, a: u32, b: u32, c: u32) -> ControlFlow<()> {
        self(a, b, c);
        ControlFlow::Continue(())
    }
}

/// Counts pairs without storing them — the "output writing excluded"
/// measurement mode of the paper.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountSink {
    /// Number of pairs delivered so far.
    pub count: u64,
}

impl PairSink for CountSink {
    fn emit(&mut self, _left: u32, _right: u32) -> ControlFlow<()> {
        self.count += 1;
        ControlFlow::Continue(())
    }
}

/// Collects every pair into a vector, in the order the join produced them.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    /// The delivered pairs.
    pub pairs: Vec<(u32, u32)>,
}

impl PairSink for CollectSink {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        self.pairs.push((left, right));
        ControlFlow::Continue(())
    }
}

/// Forwards at most `limit` pairs to an inner sink, then stops the join —
/// the `LIMIT n` of a query engine.
#[derive(Debug)]
pub struct LimitSink<S> {
    inner: S,
    limit: u64,
    seen: u64,
}

impl<S: PairSink> LimitSink<S> {
    /// Wraps `inner`, letting at most `limit` pairs through.
    pub fn new(inner: S, limit: u64) -> Self {
        LimitSink {
            inner,
            limit,
            seen: 0,
        }
    }

    /// Number of pairs forwarded so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Consumes the limiter, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PairSink> PairSink for LimitSink<S> {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        if self.seen >= self.limit {
            return ControlFlow::Break(());
        }
        match self.inner.emit(left, right) {
            ControlFlow::Continue(()) => {
                self.seen += 1;
                ControlFlow::Continue(())
            }
            // The inner sink rejected the pair; it was not delivered.
            ControlFlow::Break(()) => ControlFlow::Break(()),
        }
    }
}

/// Forwards every `k`-th pair to an inner sink — a deterministic systematic
/// sample of the output, useful for previewing huge joins.
#[derive(Debug)]
pub struct SampleSink<S> {
    inner: S,
    every: u64,
    seen: u64,
    kept: u64,
}

impl<S: PairSink> SampleSink<S> {
    /// Wraps `inner`, keeping one pair out of every `every` (`every` is
    /// clamped to at least 1).
    pub fn new(inner: S, every: u64) -> Self {
        SampleSink {
            inner,
            every: every.max(1),
            seen: 0,
            kept: 0,
        }
    }

    /// Total pairs observed (kept or skipped).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Pairs forwarded to the inner sink.
    pub fn kept(&self) -> u64 {
        self.kept
    }

    /// Consumes the sampler, returning the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: PairSink> PairSink for SampleSink<S> {
    fn emit(&mut self, left: u32, right: u32) -> ControlFlow<()> {
        let keep = self.seen % self.every == 0;
        self.seen += 1;
        if keep {
            self.kept += 1;
            self.inner.emit(left, right)
        } else {
            ControlFlow::Continue(())
        }
    }
}

/// Fans one producing scan out to several per-query sinks.
///
/// A shared scan (one R-tree traversal answering N coalesced window queries,
/// see `usj_rtree::RTree::multi_window_query`) produces `(query, pair)`
/// events rather than bare pairs. The adapter routes each event to that
/// query's sink and tracks which sinks are still accepting: a sink that
/// returns `Break` (its `LIMIT` was reached, or its cancellation token
/// fired) is **deactivated** — subsequent emissions to it are rejected
/// without being delivered — while the remaining sinks keep consuming. The
/// producer watches [`live`](FanoutSink::live) (or the per-emission
/// `ControlFlow`) and stops the whole scan only when no sink remains.
///
/// This is what makes batched execution byte-identical to per-query
/// execution: each member observes exactly the pair sequence it would have
/// seen alone, including early termination.
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn PairSink>,
    active: Vec<bool>,
    live: usize,
}

impl<'a> FanoutSink<'a> {
    /// Wraps one sink per coalesced query, all initially active.
    pub fn new(sinks: Vec<&'a mut dyn PairSink>) -> Self {
        let live = sinks.len();
        let active = vec![true; live];
        FanoutSink {
            sinks,
            active,
            live,
        }
    }

    /// Number of member sinks (active or not).
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Returns `true` if the adapter wraps no sinks.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }

    /// Number of sinks still accepting pairs.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether member `idx` is still accepting pairs.
    pub fn is_active(&self, idx: usize) -> bool {
        self.active.get(idx).copied().unwrap_or(false)
    }

    /// Offers one pair to member `idx`.
    ///
    /// Returns that member's flow: `Continue` if it consumed the pair,
    /// `Break` if the member is (now) done — either it just rejected the
    /// pair and was deactivated, or it had been deactivated earlier. A
    /// `Break` here stops only member `idx`; the producer should consult
    /// [`live`](FanoutSink::live) to decide whether the whole scan can stop.
    pub fn emit_to(&mut self, idx: usize, left: u32, right: u32) -> ControlFlow<()> {
        if !self.is_active(idx) {
            return ControlFlow::Break(());
        }
        match self.sinks[idx].emit(left, right) {
            ControlFlow::Continue(()) => ControlFlow::Continue(()),
            ControlFlow::Break(()) => {
                self.active[idx] = false;
                self.live -= 1;
                ControlFlow::Break(())
            }
        }
    }

    /// Deactivates member `idx` without offering it a pair (e.g. the
    /// producer noticed its cancellation out of band).
    pub fn close(&mut self, idx: usize) {
        if self.is_active(idx) {
            self.active[idx] = false;
            self.live -= 1;
        }
    }
}

impl std::fmt::Debug for FanoutSink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutSink")
            .field("members", &self.sinks.len())
            .field("live", &self.live)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closures_are_sinks_that_never_break() {
        let mut got = Vec::new();
        let mut sink = |a: u32, b: u32| got.push((a, b));
        assert!(PairSink::emit(&mut sink, 1, 2).is_continue());
        assert_eq!(got, vec![(1, 2)]);
    }

    #[test]
    fn count_and_collect_sinks_accumulate() {
        let mut count = CountSink::default();
        let mut collect = CollectSink::default();
        for i in 0..5 {
            assert!(count.emit(i, i + 10).is_continue());
            assert!(collect.emit(i, i + 10).is_continue());
        }
        assert_eq!(count.count, 5);
        assert_eq!(collect.pairs.len(), 5);
        assert_eq!(collect.pairs[3], (3, 13));
    }

    #[test]
    fn limit_sink_breaks_exactly_at_the_limit() {
        let mut sink = LimitSink::new(CollectSink::default(), 3);
        assert!(sink.emit(0, 0).is_continue());
        assert!(sink.emit(1, 1).is_continue());
        assert!(sink.emit(2, 2).is_continue());
        // The fourth pair is rejected and stops the join.
        assert!(sink.emit(3, 3).is_break());
        assert!(sink.emit(4, 4).is_break());
        assert_eq!(sink.seen(), 3);
        assert_eq!(sink.into_inner().pairs, vec![(0, 0), (1, 1), (2, 2)]);
    }

    #[test]
    fn zero_limit_stops_before_any_pair() {
        let mut sink = LimitSink::new(CountSink::default(), 0);
        assert!(sink.emit(1, 2).is_break());
        assert_eq!(sink.into_inner().count, 0);
    }

    #[test]
    fn fanout_routes_and_deactivates_per_member() {
        let mut a = CollectSink::default();
        let mut b = LimitSink::new(CollectSink::default(), 2);
        let mut c = CountSink::default();
        {
            let mut fan = FanoutSink::new(vec![&mut a, &mut b, &mut c]);
            assert_eq!(fan.len(), 3);
            assert_eq!(fan.live(), 3);
            for i in 0..4u32 {
                assert!(fan.emit_to(0, i, i).is_continue());
                let flow = fan.emit_to(1, i, i);
                // Member 1 accepts two pairs, then breaks and stays broken.
                assert_eq!(flow.is_continue(), i < 2, "pair {i}");
                assert!(fan.emit_to(2, i, i).is_continue());
            }
            assert_eq!(fan.live(), 2);
            assert!(fan.is_active(0) && !fan.is_active(1) && fan.is_active(2));
            // Closing out of band drops the live count exactly once.
            fan.close(2);
            fan.close(2);
            assert_eq!(fan.live(), 1);
            assert!(fan.emit_to(2, 9, 9).is_break());
            // Out-of-range members are never active.
            assert!(!fan.is_active(7));
            assert!(fan.emit_to(7, 0, 0).is_break());
        }
        assert_eq!(a.pairs.len(), 4);
        assert_eq!(b.into_inner().pairs, vec![(0, 0), (1, 1)]);
        assert_eq!(c.count, 4);
    }

    #[test]
    fn empty_fanout_has_no_live_members() {
        let fan = FanoutSink::new(Vec::new());
        assert!(fan.is_empty());
        assert_eq!(fan.live(), 0);
        assert_eq!(format!("{fan:?}"), "FanoutSink { members: 0, live: 0 }");
    }

    #[test]
    fn sample_sink_keeps_every_kth_pair() {
        let mut sink = SampleSink::new(CollectSink::default(), 3);
        for i in 0..10 {
            assert!(sink.emit(i, i).is_continue());
        }
        assert_eq!(sink.seen(), 10);
        assert_eq!(sink.kept(), 4);
        assert_eq!(sink.into_inner().pairs, vec![(0, 0), (3, 3), (6, 6), (9, 9)]);
    }
}
