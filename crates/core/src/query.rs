//! The unified query surface: one builder over every algorithm, predicate
//! and execution strategy.
//!
//! The paper's central claim is *unification* — one algorithm serving indexed
//! and non-indexed inputs alike. This module lifts that unification to the
//! API: instead of choosing between `SssjJoin`/`PbsmJoin`/`PqJoin`/`StJoin`,
//! `CostBasedJoin` and `ParallelJoin` by hand, callers describe the query
//! once and let the builder lower it:
//!
//! ```text
//! SpatialQuery::new(left, right)      -- what to join
//!     .algorithm(Algo::Auto)          -- how (or let the §6.3 cost model pick)
//!     .predicate(Predicate::WithinDistance(eps))
//!     .execution(Execution::parallel())
//!     .plan(&mut env)?                -- inspectable QueryPlan, or
//!     .execute(&mut env, &mut sink)?  -- stream pairs into any PairSink
//! ```
//!
//! Every combination of algorithm × predicate × execution is reachable, and
//! the output streams through a [`PairSink`] — counting, collecting,
//! sampling and LIMIT-style early termination all compose with every plan.
//!
//! This module is also the crate's **single algorithm-dispatch site**
//! ([`JoinAlgorithm::run`] and the experiment harness route through it), so
//! adding an algorithm means touching exactly one `match`.

use std::fmt;

use usj_geom::Rect;
use usj_io::{Result, SimEnv};

use crate::cost::{CostBasedJoin, CostEstimate, JoinPlan};
use crate::input::JoinInput;
use crate::parallel::{HilbertPartitioner, ParallelJoin, Partitioner, ShardMap, TilePartitioner};
use crate::pbsm::PbsmJoin;
use crate::pq::PqJoin;
use crate::predicate::Predicate;
use crate::result::JoinResult;
use crate::sink::{CollectSink, CountSink, LimitSink, PairSink};
use crate::sssj::SssjJoin;
use crate::st::StJoin;
use crate::{JoinAlgorithm, JoinOperator};

/// The algorithm selection of a [`SpatialQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algo {
    /// Let the Section 6.3 cost model decide between the indexed (pruned PQ)
    /// and non-indexed (SSSJ) strategies, exactly as [`CostBasedJoin`] does.
    #[default]
    Auto,
    /// Scalable Sweeping-based Spatial Join (sort + sweep, ignores indexes).
    Sssj,
    /// Partition-Based Spatial Merge join (tile-hash partitioning).
    Pbsm,
    /// Priority-Queue-Driven Traversal (the paper's unified algorithm).
    Pq,
    /// Synchronized R-tree Traversal (builds indexes on non-indexed inputs).
    St,
}

impl From<JoinAlgorithm> for Algo {
    fn from(alg: JoinAlgorithm) -> Self {
        match alg {
            JoinAlgorithm::Sssj => Algo::Sssj,
            JoinAlgorithm::Pbsm => Algo::Pbsm,
            JoinAlgorithm::Pq => Algo::Pq,
            JoinAlgorithm::St => Algo::St,
        }
    }
}

/// The spatial-sharding strategy of a parallel execution (a value-level
/// stand-in for the concrete [`Partitioner`] implementations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// Contiguous Hilbert-curve runs: spatially coherent shards, minimal
    /// replication ([`HilbertPartitioner`]).
    #[default]
    Hilbert,
    /// Round-robin tile deal: best load balance, more replication
    /// ([`TilePartitioner`]).
    Tile,
}

impl PartitionStrategy {
    /// Strategy name, matching [`Partitioner::name`].
    pub fn name(&self) -> &'static str {
        match self {
            PartitionStrategy::Hilbert => "hilbert",
            PartitionStrategy::Tile => "tile",
        }
    }

    fn build(&self, region: Rect, shards: usize) -> ShardMap {
        match self {
            PartitionStrategy::Hilbert => HilbertPartitioner::default().build(region, shards),
            PartitionStrategy::Tile => TilePartitioner::default().build(region, shards),
        }
    }
}

/// The execution strategy of a [`SpatialQuery`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// Single-threaded, exactly the serial algorithms of the paper.
    #[default]
    Serial,
    /// Spatially sharded across a worker pool ([`ParallelJoin`]).
    Parallel {
        /// How grid cells are dealt to shards.
        partitioner: PartitionStrategy,
        /// Worker threads; `0` means the executor's default (one per CPU,
        /// capped at 8).
        threads: usize,
        /// Spatial shards; `0` means one shard per worker thread.
        shards: usize,
    },
}

impl Execution {
    /// Parallel execution with the default Hilbert partitioner, thread count
    /// and shard count.
    pub fn parallel() -> Self {
        Execution::Parallel {
            partitioner: PartitionStrategy::default(),
            threads: 0,
            shards: 0,
        }
    }
}

/// The lowered, inspectable form of a [`SpatialQuery`]: which algorithm will
/// run, why, and how the data space is sharded if the execution is parallel.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The concrete algorithm the query lowers to ([`Algo::Auto`] resolved).
    pub algorithm: JoinAlgorithm,
    /// The pair-selection predicate.
    pub predicate: Predicate,
    /// The §6.3 cost estimate, present when [`Algo::Auto`] consulted it.
    pub cost: Option<CostEstimate>,
    /// The strategy the estimate picked, present when [`Algo::Auto`]
    /// consulted it.
    pub chosen: Option<JoinPlan>,
    /// Sharding of a parallel execution; `None` for serial plans.
    pub parallelism: Option<ParallelPlan>,
    /// How the plan expects to behave under the environment's internal
    /// memory limit (repartitioning depth, spill volume).
    pub memory: MemoryPlan,
}

/// The memory-adaptivity part of a [`QueryPlan`]: what the memory governor
/// is expected to make the chosen algorithm do under the environment's
/// limit. Both figures are *planning heuristics* — uniform-distribution
/// upper bounds, not measurements; the measured counterpart arrives in
/// `JoinResult` (`memory.peak_bytes`, `sweep.spilled_items`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryPlan {
    /// The internal-memory limit (bytes) the plan was made against.
    pub memory_limit: usize,
    /// Expected PBSM repartitioning depth: `0` when every level-1 partition
    /// is expected to fit, `n` when `n` recursive splitting levels are
    /// expected. Always `0` for the non-partitioning algorithms.
    pub partition_depth: u32,
    /// Expected bytes the sweep driver will spill to the simulated device —
    /// the amount by which the worst-case sweep working set exceeds its
    /// budget. `0` when everything is expected to fit.
    pub spill_estimate_bytes: u64,
}

impl MemoryPlan {
    /// Computes the heuristic for `algorithm` over inputs of the given total
    /// and smaller-side byte sizes, mirroring the runtime sizing rules:
    /// PBSM partitions of a quarter of memory with the fan-out capped by the
    /// distribution writers (one page each in a quarter of memory), a
    /// partition admitted when its 3× in-memory envelope fits the full
    /// memory, a 4-way split per repartitioning level, and a sweep budget of
    /// half the free memory for SSSJ/PQ.
    fn estimate(
        algorithm: JoinAlgorithm,
        memory_limit: usize,
        total_bytes: u64,
        smaller_bytes: u64,
    ) -> MemoryPlan {
        let mut plan = MemoryPlan {
            memory_limit,
            partition_depth: 0,
            spill_estimate_bytes: 0,
        };
        match algorithm {
            JoinAlgorithm::Pbsm => {
                let quarter = (memory_limit / 4).max(1) as u64;
                let max_fanout = ((memory_limit / 4) / usj_io::PAGE_SIZE).max(1) as u64;
                let partitions = total_bytes.div_ceil(quarter).max(1).min(max_fanout);
                let mut need = 3 * total_bytes / partitions;
                let budget = memory_limit.max(1) as u64;
                while need > budget && plan.partition_depth < 8 {
                    plan.partition_depth += 1;
                    need /= 4;
                }
            }
            JoinAlgorithm::Sssj | JoinAlgorithm::Pq => {
                // Worst case the whole smaller side is alive at one sweep
                // position; the driver's budget is half the free memory.
                let budget = (memory_limit / 2) as u64;
                plan.spill_estimate_bytes = smaller_bytes.saturating_sub(budget);
            }
            JoinAlgorithm::St => {}
        }
        plan
    }
}

/// The parallel-execution part of a [`QueryPlan`].
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    /// The partitioning strategy.
    pub partitioner: PartitionStrategy,
    /// Resolved worker-thread count.
    pub threads: usize,
    /// Resolved shard count.
    pub shards: usize,
    /// The cell-to-shard map the executor will replicate against.
    pub shard_map: ShardMap,
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} join, {} predicate", self.algorithm.name(), self.predicate.name())?;
        if let (Some(cost), Some(chosen)) = (&self.cost, &self.chosen) {
            write!(
                f,
                ", auto-selected {:?} (indexed {:.2}s vs sorted {:.2}s, touches {:.0}% of the index)",
                chosen,
                cost.indexed_secs,
                cost.non_indexed_secs,
                cost.touched_fraction * 100.0
            )?;
        }
        match &self.parallelism {
            None => write!(f, ", serial")?,
            Some(p) => write!(
                f,
                ", parallel over {} {} shards on {} threads",
                p.shards,
                p.partitioner.name(),
                p.threads
            )?,
        }
        if self.memory.partition_depth > 0 {
            write!(
                f,
                ", ~{}-level repartitioning expected",
                self.memory.partition_depth
            )?;
        }
        if self.memory.spill_estimate_bytes > 0 {
            write!(
                f,
                ", ~{:.1} MB sweep spill expected",
                self.memory.spill_estimate_bytes as f64 / (1024.0 * 1024.0)
            )?;
        }
        write!(
            f,
            " ({} MB memory limit)",
            self.memory.memory_limit / (1024 * 1024)
        )
    }
}

/// A fluent builder describing a two-way spatial join: inputs, algorithm,
/// predicate and execution strategy.
///
/// The builder lowers to an inspectable [`QueryPlan`] ([`SpatialQuery::plan`])
/// and executes through any [`PairSink`] ([`SpatialQuery::execute`]), with
/// [`run`](SpatialQuery::run) / [`count`](SpatialQuery::count) /
/// [`collect`](SpatialQuery::collect) / [`first`](SpatialQuery::first)
/// convenience wrappers for the common sinks.
///
/// # Example
///
/// ```
/// use usj_core::{Algo, Execution, JoinInput, Predicate, SpatialQuery};
/// use usj_geom::{Item, Rect};
/// use usj_io::{ItemStream, MachineConfig, SimEnv};
///
/// let mut env = SimEnv::new(MachineConfig::machine3());
/// let rows: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(0.0, i as f32, 10.0, i as f32 + 0.4), i))
///     .collect();
/// let cols: Vec<Item> = (0..10)
///     .map(|i| Item::new(Rect::from_coords(i as f32, 0.0, i as f32 + 0.4, 10.0), 100 + i))
///     .collect();
/// let l = ItemStream::from_items(&mut env, &rows).unwrap();
/// let r = ItemStream::from_items(&mut env, &cols).unwrap();
///
/// // Intersection join, algorithm picked by the cost model.
/// let n = SpatialQuery::new(JoinInput::Stream(&l), JoinInput::Stream(&r))
///     .algorithm(Algo::Auto)
///     .count(&mut env)
///     .unwrap();
/// assert_eq!(n, 100);
///
/// // The same query as a parallel ε-distance join, stopping after 5 pairs.
/// let (_, pairs) = SpatialQuery::new(JoinInput::Stream(&l), JoinInput::Stream(&r))
///     .algorithm(Algo::Pq)
///     .predicate(Predicate::WithinDistance(0.5))
///     .execution(Execution::parallel())
///     .first(&mut env, 5)
///     .unwrap();
/// assert_eq!(pairs.len(), 5);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SpatialQuery<'a> {
    left: JoinInput<'a>,
    right: JoinInput<'a>,
    algo: Algo,
    predicate: Predicate,
    execution: Execution,
    region_hint: Option<Rect>,
}

impl<'a> SpatialQuery<'a> {
    /// Starts a query joining `left` against `right`.
    pub fn new(left: JoinInput<'a>, right: JoinInput<'a>) -> Self {
        SpatialQuery {
            left,
            right,
            algo: Algo::default(),
            predicate: Predicate::default(),
            execution: Execution::default(),
            region_hint: None,
        }
    }

    /// Selects the join algorithm (default: [`Algo::Auto`]).
    pub fn algorithm(mut self, algo: Algo) -> Self {
        self.algo = algo;
        self
    }

    /// Selects the pair predicate (default: [`Predicate::Intersects`]).
    pub fn predicate(mut self, predicate: Predicate) -> Self {
        self.predicate = predicate;
        self
    }

    /// Selects the execution strategy (default: [`Execution::Serial`]).
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Provides the data-space bounding box, sparing the algorithms their
    /// region-discovery scans.
    pub fn region_hint(mut self, region: Rect) -> Self {
        self.region_hint = Some(region);
        self
    }

    /// Resolves [`Algo::Auto`] through the cost model. Returns the concrete
    /// algorithm, the estimate (when consulted) and whether PQ should prune
    /// (the auto-selected indexed strategy prunes, mirroring
    /// [`CostBasedJoin`]).
    fn resolve(
        &self,
        env: &mut SimEnv,
    ) -> Result<(JoinAlgorithm, Option<CostEstimate>, Option<JoinPlan>, bool)> {
        Ok(match self.algo {
            Algo::Sssj => (JoinAlgorithm::Sssj, None, None, false),
            Algo::Pbsm => (JoinAlgorithm::Pbsm, None, None, false),
            Algo::Pq => (JoinAlgorithm::Pq, None, None, false),
            Algo::St => (JoinAlgorithm::St, None, None, false),
            Algo::Auto => {
                let est = CostBasedJoin::default().estimate(env, &self.left, &self.right)?;
                let chosen = est.plan();
                let alg = match chosen {
                    JoinPlan::Indexed => JoinAlgorithm::Pq,
                    JoinPlan::NonIndexed => JoinAlgorithm::Sssj,
                };
                (alg, Some(est), Some(chosen), chosen == JoinPlan::Indexed)
            }
        })
    }

    /// The crate's single algorithm-dispatch site: constructs the serial
    /// operator for a resolved algorithm.
    fn operator_for(
        &self,
        algorithm: JoinAlgorithm,
        pruning: bool,
    ) -> Box<dyn JoinOperator + Send + Sync> {
        match algorithm {
            JoinAlgorithm::Sssj => Box::new(SssjJoin {
                region_hint: self.region_hint,
                predicate: self.predicate,
            }),
            JoinAlgorithm::Pbsm => Box::new(
                PbsmJoin::default()
                    .with_predicate(self.predicate)
                    .with_region_opt(self.region_hint),
            ),
            JoinAlgorithm::Pq => Box::new(PqJoin {
                prune_to_other: pruning,
                region_hint: self.region_hint,
                predicate: self.predicate,
            }),
            JoinAlgorithm::St => Box::new(StJoin::default().with_predicate(self.predicate)),
        }
    }

    /// Lowers the query to an inspectable [`QueryPlan`] without executing it.
    ///
    /// Resolving [`Algo::Auto`] prices both strategies (reading the index
    /// directories), and planning a parallel execution over inputs of unknown
    /// extent scans them once to place the shard grid; both costs are charged
    /// to `env` like any other accounted work.
    pub fn plan(&self, env: &mut SimEnv) -> Result<QueryPlan> {
        let (algorithm, cost, chosen, _) = self.resolve(env)?;
        let parallelism = match self.execution {
            Execution::Serial => None,
            Execution::Parallel {
                partitioner,
                threads,
                shards,
            } => {
                let (threads, shards) = resolved_parallelism(threads, shards);
                let region = self.discover_region(env)?;
                Some(ParallelPlan {
                    partitioner,
                    threads,
                    shards,
                    shard_map: partitioner.build(region, shards),
                })
            }
        };
        let left_bytes = self.left.len() * usj_geom::ITEM_BYTES as u64;
        let right_bytes = self.right.len() * usj_geom::ITEM_BYTES as u64;
        let memory = MemoryPlan::estimate(
            algorithm,
            env.memory_limit,
            left_bytes + right_bytes,
            left_bytes.min(right_bytes),
        );
        Ok(QueryPlan {
            algorithm,
            predicate: self.predicate,
            cost,
            chosen,
            parallelism,
            memory,
        })
    }

    /// Executes the query, streaming every accepted pair into `sink`.
    pub fn execute(&self, env: &mut SimEnv, sink: &mut dyn PairSink) -> Result<JoinResult> {
        let (algorithm, _, _, pruning) = self.resolve(env)?;
        let op = self.operator_for(algorithm, pruning);
        match self.execution {
            Execution::Serial => op.run_with(env, self.left, self.right, sink),
            Execution::Parallel {
                partitioner,
                threads,
                shards,
            } => self.dispatch_parallel(
                env,
                op,
                algorithm,
                partitioner,
                threads,
                shards,
                self.region_hint,
                sink,
            ),
        }
    }

    /// Executes a previously computed [`QueryPlan`] (from
    /// [`plan`](SpatialQuery::plan) on this same query), streaming pairs
    /// into `sink`.
    ///
    /// This skips the resolution work `execute` would repeat: the
    /// [`Algo::Auto`] cost estimate is not re-priced, and a parallel plan's
    /// data-space region is reused from its shard map instead of being
    /// rediscovered with another scan.
    pub fn execute_planned(
        &self,
        env: &mut SimEnv,
        plan: &QueryPlan,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        let pruning = plan.chosen == Some(JoinPlan::Indexed);
        let op = self.operator_for(plan.algorithm, pruning);
        match &plan.parallelism {
            None => op.run_with(env, self.left, self.right, sink),
            Some(p) => self.dispatch_parallel(
                env,
                op,
                plan.algorithm,
                p.partitioner,
                p.threads,
                p.shards,
                Some(p.shard_map.region()),
                sink,
            ),
        }
    }

    /// Executes a previously computed [`QueryPlan`], discarding the pairs.
    pub fn run_planned(&self, env: &mut SimEnv, plan: &QueryPlan) -> Result<JoinResult> {
        self.execute_planned(env, plan, &mut CountSink::default())
    }

    #[allow(clippy::too_many_arguments)]
    fn dispatch_parallel(
        &self,
        env: &mut SimEnv,
        op: Box<dyn JoinOperator + Send + Sync>,
        algorithm: JoinAlgorithm,
        partitioner: PartitionStrategy,
        threads: usize,
        shards: usize,
        region: Option<Rect>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        // ST only makes sense on indexes, so its shards are bulk-loaded; the
        // other algorithms join the shard streams directly.
        let index_shards = algorithm == JoinAlgorithm::St;
        match partitioner {
            PartitionStrategy::Hilbert => self.run_parallel(
                env,
                op,
                HilbertPartitioner::default(),
                threads,
                shards,
                index_shards,
                region,
                sink,
            ),
            PartitionStrategy::Tile => self.run_parallel(
                env,
                op,
                TilePartitioner::default(),
                threads,
                shards,
                index_shards,
                region,
                sink,
            ),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_parallel<P: Partitioner>(
        &self,
        env: &mut SimEnv,
        op: Box<dyn JoinOperator + Send + Sync>,
        partitioner: P,
        threads: usize,
        shards: usize,
        index_shards: bool,
        region: Option<Rect>,
        sink: &mut dyn PairSink,
    ) -> Result<JoinResult> {
        // Resolve the 0-means-default counts exactly as `plan()` does, so
        // the executed sharding always matches the inspectable plan.
        let (threads, shards) = resolved_parallelism(threads, shards);
        let mut pj = ParallelJoin::new(op, partitioner)
            .with_threads(threads)
            .with_shards(shards);
        if let Some(region) = region {
            pj = pj.with_region(region);
        }
        if index_shards {
            pj = pj.with_indexed_shards();
        }
        pj.run_with(env, self.left, self.right, sink)
    }

    /// Executes the query, discarding the pairs (the paper's measurement
    /// mode) and returning the accounting summary.
    pub fn run(&self, env: &mut SimEnv) -> Result<JoinResult> {
        self.execute(env, &mut CountSink::default())
    }

    /// Executes the query and returns only the number of accepted pairs.
    pub fn count(&self, env: &mut SimEnv) -> Result<u64> {
        Ok(self.run(env)?.pairs)
    }

    /// Executes the query, collecting every pair in memory.
    pub fn collect(&self, env: &mut SimEnv) -> Result<(JoinResult, Vec<(u32, u32)>)> {
        let mut sink = CollectSink::default();
        let res = self.execute(env, &mut sink)?;
        Ok((res, sink.pairs))
    }

    /// Executes the query with a `LIMIT`: collects at most `limit` pairs,
    /// stopping the join — and its I/O — as soon as they are found.
    pub fn first(
        &self,
        env: &mut SimEnv,
        limit: u64,
    ) -> Result<(JoinResult, Vec<(u32, u32)>)> {
        let mut sink = LimitSink::new(CollectSink::default(), limit);
        let res = self.execute(env, &mut sink)?;
        Ok((res, sink.into_inner().pairs))
    }

    /// Data-space region for shard-map planning: the hint, the union of the
    /// known index bounding boxes, or one discovery scan.
    fn discover_region(&self, env: &mut SimEnv) -> Result<Rect> {
        if let Some(r) = self.region_hint {
            return Ok(r);
        }
        if let (Some(a), Some(b)) = (self.left.known_bbox(), self.right.known_bbox()) {
            return Ok(a.union(&b));
        }
        let mut bbox = Rect::empty();
        for input in [&self.left, &self.right] {
            match input.known_bbox() {
                Some(b) => bbox = bbox.union(&b),
                None => {
                    let stream = input.to_stream(env)?;
                    let mut r = stream.reader();
                    while let Some(it) = r.next(env)? {
                        env.charge(usj_io::CpuOp::RectTest, 1);
                        bbox = bbox.union(&it.rect);
                    }
                }
            }
        }
        Ok(if bbox.is_empty() {
            Rect::from_coords(0.0, 0.0, 1.0, 1.0)
        } else {
            bbox
        })
    }
}

/// Resolves `0`-means-default thread and shard counts the same way
/// [`ParallelJoin::new`] does.
fn resolved_parallelism(threads: usize, shards: usize) -> (usize, usize) {
    let threads = if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    };
    let shards = if shards > 0 { shards } else { threads };
    (threads, shards)
}

impl PbsmJoin {
    /// `with_region` that accepts an optional rectangle (builder plumbing for
    /// the query lowering).
    fn with_region_opt(self, region: Option<Rect>) -> Self {
        match region {
            Some(r) => self.with_region(r),
            None => self,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use usj_geom::Item;
    use usj_io::{ItemStream, MachineConfig};
    use usj_rtree::RTree;

    fn env() -> SimEnv {
        SimEnv::new(MachineConfig::machine3())
    }

    fn grid(n: u32, cell: f32, offset: f32, id_base: u32) -> Vec<Item> {
        let mut out = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let x = offset + i as f32 * cell;
                let y = offset + j as f32 * cell;
                out.push(Item::new(
                    Rect::from_coords(x, y, x + cell * 0.7, y + cell * 0.7),
                    id_base + i * n + j,
                ));
            }
        }
        out
    }

    #[test]
    fn every_algorithm_is_reachable_and_agrees() {
        let mut e = env();
        let a = grid(15, 4.0, 0.0, 0);
        let b = grid(15, 4.0, 1.5, 100_000);
        let sa = ItemStream::from_items(&mut e, &a).unwrap();
        let sb = ItemStream::from_items(&mut e, &b).unwrap();
        let expected: u64 = a
            .iter()
            .map(|x| b.iter().filter(|y| x.rect.intersects(&y.rect)).count() as u64)
            .sum();
        for algo in [Algo::Auto, Algo::Sssj, Algo::Pbsm, Algo::Pq, Algo::St] {
            let n = SpatialQuery::new(JoinInput::Stream(&sa), JoinInput::Stream(&sb))
                .algorithm(algo)
                .count(&mut e)
                .unwrap();
            assert_eq!(n, expected, "{algo:?}");
        }
    }

    #[test]
    fn auto_resolution_mirrors_the_cost_based_join() {
        let mut e = env();
        // Localized right side: the indexed plan wins (cf. cost.rs tests).
        let a = grid(80, 3.0, 0.0, 0);
        let b = grid(8, 3.0, 0.0, 100_000);
        let ta = RTree::bulk_load(&mut e, &a).unwrap();
        let tb = RTree::bulk_load(&mut e, &b).unwrap();
        let q = SpatialQuery::new(JoinInput::Indexed(&ta), JoinInput::Indexed(&tb));
        let plan = q.plan(&mut e).unwrap();
        let (legacy_plan, legacy_est, legacy_res) = CostBasedJoin::default()
            .run(&mut e, JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .unwrap();
        assert_eq!(plan.chosen, Some(legacy_plan));
        assert_eq!(plan.cost.unwrap(), legacy_est);
        assert_eq!(plan.algorithm, JoinAlgorithm::Pq);
        let res = q.run(&mut e).unwrap();
        assert_eq!(res, legacy_res, "auto execution must match CostBasedJoin");
    }

    #[test]
    fn parallel_plans_expose_their_shard_map() {
        let mut e = env();
        let a = grid(10, 4.0, 0.0, 0);
        let ta = RTree::bulk_load(&mut e, &a).unwrap();
        let plan = SpatialQuery::new(JoinInput::Indexed(&ta), JoinInput::Indexed(&ta))
            .algorithm(Algo::Pq)
            .execution(Execution::Parallel {
                partitioner: PartitionStrategy::Tile,
                threads: 3,
                shards: 5,
            })
            .plan(&mut e)
            .unwrap();
        let text = format!("{plan}");
        let p = plan.parallelism.expect("parallel plan");
        assert_eq!(p.threads, 3);
        assert_eq!(p.shards, 5);
        assert_eq!(p.shard_map.shards(), 5);
        assert!(p.shard_map.region().contains(&ta.bbox()));
        assert!(text.contains("PQ") && text.contains("tile"), "{text}");
    }

    #[test]
    fn contains_predicate_reports_only_contained_pairs() {
        let mut e = env();
        // Big boxes on the left, small boxes on the right: half the small
        // boxes sit inside a big one, half straddle the border.
        let big: Vec<Item> = (0..5)
            .map(|i| Item::new(Rect::from_coords(i as f32 * 10.0, 0.0, i as f32 * 10.0 + 8.0, 8.0), i))
            .collect();
        let small: Vec<Item> = (0..10)
            .map(|i| {
                let x = i as f32 * 5.0;
                Item::new(Rect::from_coords(x, 1.0, x + 2.0, 3.0), 100 + i)
            })
            .collect();
        let sb = ItemStream::from_items(&mut e, &big).unwrap();
        let ss = ItemStream::from_items(&mut e, &small).unwrap();
        let expected: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> = big
                .iter()
                .flat_map(|x| {
                    small
                        .iter()
                        .filter(|y| x.rect.contains(&y.rect))
                        .map(|y| (x.id, y.id))
                        .collect::<Vec<_>>()
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert!(!expected.is_empty());
        for algo in [Algo::Sssj, Algo::Pbsm, Algo::Pq, Algo::St] {
            let (_, mut pairs) = SpatialQuery::new(JoinInput::Stream(&sb), JoinInput::Stream(&ss))
                .algorithm(algo)
                .predicate(Predicate::Contains)
                .collect(&mut e)
                .unwrap();
            pairs.sort_unstable();
            assert_eq!(pairs, expected, "{algo:?}");
        }
    }

    #[test]
    fn limit_zero_delivers_and_counts_nothing() {
        let mut e = env();
        let a = grid(10, 4.0, 0.0, 0);
        let sa = ItemStream::from_items(&mut e, &a).unwrap();
        for execution in [Execution::Serial, Execution::parallel()] {
            let (res, pairs) = SpatialQuery::new(JoinInput::Stream(&sa), JoinInput::Stream(&sa))
                .algorithm(Algo::Pq)
                .execution(execution)
                .first(&mut e, 0)
                .unwrap();
            assert!(pairs.is_empty(), "{execution:?}");
            assert_eq!(res.pairs, 0, "{execution:?}: LIMIT 0 must count zero pairs");
        }
    }

    #[test]
    fn executed_sharding_matches_the_plan_for_default_counts() {
        let mut e = env();
        let a = grid(12, 4.0, 0.0, 0);
        let b = grid(12, 4.0, 1.0, 100_000);
        let sa = ItemStream::from_items(&mut e, &a).unwrap();
        let sb = ItemStream::from_items(&mut e, &b).unwrap();
        // threads pinned, shards left to "one per worker thread".
        let q = SpatialQuery::new(JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .algorithm(Algo::Pbsm)
            .execution(Execution::Parallel {
                partitioner: PartitionStrategy::Hilbert,
                threads: 3,
                shards: 0,
            });
        let plan = q.plan(&mut e).unwrap();
        let p = plan.parallelism.as_ref().expect("parallel plan");
        assert_eq!(p.shards, 3, "0 shards means one per worker thread");
        // The executed result must agree with an explicit ParallelJoin using
        // the planned counts.
        let (res, pairs) = q.collect(&mut e).unwrap();
        let explicit = ParallelJoin::new(
            PbsmJoin::default(),
            HilbertPartitioner::default(),
        )
        .with_threads(p.threads)
        .with_shards(p.shards);
        let (exp_res, exp_pairs) = explicit
            .run_collect(&mut e, JoinInput::Stream(&sa), JoinInput::Stream(&sb))
            .unwrap();
        assert_eq!(res.pairs, exp_res.pairs);
        assert_eq!(pairs, exp_pairs, "pair order depends on the shard map");
    }

    #[test]
    fn execute_planned_reuses_the_plan_without_re_estimating() {
        let mut e = env();
        let a = grid(80, 3.0, 0.0, 0);
        let b = grid(8, 3.0, 0.0, 100_000);
        let ta = RTree::bulk_load(&mut e, &a).unwrap();
        let tb = RTree::bulk_load(&mut e, &b).unwrap();
        let q = SpatialQuery::new(JoinInput::Indexed(&ta), JoinInput::Indexed(&tb));
        let plan = q.plan(&mut e).unwrap();
        assert_eq!(plan.algorithm, JoinAlgorithm::Pq);

        // Executing the plan performs no estimation I/O beyond the join's
        // own: it matches a one-shot run() (whose returned accounting also
        // excludes the estimate) pair for pair.
        let planned = q.run_planned(&mut e, &plan).unwrap();
        let oneshot = q.run(&mut e).unwrap();
        assert_eq!(planned, oneshot);

        // And the device-level delta of the planned execution is smaller
        // than resolve+run, because the directory probe is skipped.
        let m = e.begin();
        let _ = q.run_planned(&mut e, &plan).unwrap();
        let (planned_io, _) = e.since(&m);
        let m = e.begin();
        let _ = q.run(&mut e).unwrap();
        let (resolved_io, _) = e.since(&m);
        assert!(
            planned_io.pages_read < resolved_io.pages_read,
            "planned {} vs resolved {}",
            planned_io.pages_read,
            resolved_io.pages_read
        );
    }

    #[test]
    fn first_stops_early_and_returns_exactly_the_limit() {
        let mut e = env();
        let a = grid(70, 4.0, 0.0, 0);
        let b = grid(70, 4.0, 1.5, 100_000);
        let ta = RTree::bulk_load(&mut e, &a).unwrap();
        let tb = RTree::bulk_load(&mut e, &b).unwrap();
        assert!(ta.nodes() + tb.nodes() > 10, "trees must span many pages");
        let q = SpatialQuery::new(JoinInput::Indexed(&ta), JoinInput::Indexed(&tb))
            .algorithm(Algo::Pq);
        let full = q.run(&mut e).unwrap();
        assert!(full.pairs > 10);
        let (limited, pairs) = q.first(&mut e, 7).unwrap();
        assert_eq!(pairs.len(), 7);
        assert_eq!(limited.pairs, 7);
        assert!(
            limited.index_page_requests < full.index_page_requests,
            "LIMIT must stop the index traversal early ({} vs {})",
            limited.index_page_requests,
            full.index_page_requests
        );
    }
}
