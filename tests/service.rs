//! Acceptance suite of the catalog + service subsystem.
//!
//! Three properties gate the `usj_service` subsystem:
//!
//! 1. **Catalog saving** — a cataloged join charges *strictly less* I/O than
//!    the uncataloged equivalent while producing identical pairs: the ST
//!    path stops bulk-loading throwaway R-trees per query, and the
//!    sort-based paths stop re-sorting.
//! 2. **Admission control** — a 16-request concurrent run under a 16 MB
//!    shared budget completes with every per-query measured `peak_bytes`
//!    within its granted budget (hence within the limit), with deferred
//!    admissions actually recorded, and with the sum of concurrently
//!    granted budgets bounded by the limit by construction.
//! 3. **Service semantics** — persistence round-trips through a device
//!    snapshot, cancellation stops queued work, and repeat queries hit the
//!    plan cache.

use unified_spatial_join::prelude::*;

fn workload(scale: u64, seed: u64) -> Workload {
    WorkloadSpec::preset(Preset::NJ).with_scale(scale).generate(seed)
}

fn sorted(mut pairs: Vec<(u32, u32)>) -> Vec<(u32, u32)> {
    pairs.sort_unstable();
    pairs
}

/// Acceptance criterion 1: the cataloged ST join performs strictly less
/// charged I/O than the uncataloged equivalent and produces byte-identical
/// pairs.
#[test]
fn cataloged_st_join_charges_strictly_less_io_for_identical_pairs() {
    let w = workload(400, 7);

    // Uncataloged: ST receives flat streams and bulk-loads a throwaway
    // R-tree per input, per query — all charged.
    let mut env_u = SimEnv::new(MachineConfig::machine3());
    let (roads, hydro) = env_u.unaccounted(|env| {
        (
            unified_spatial_join::io::ItemStream::from_items(env, &w.roads).unwrap(),
            unified_spatial_join::io::ItemStream::from_items(env, &w.hydro).unwrap(),
        )
    });
    env_u.device.reset_stats();
    let (uncat, uncat_pairs) = StJoin::default()
        .run_collect(&mut env_u, JoinInput::Stream(&roads), JoinInput::Stream(&hydro))
        .unwrap();

    // Cataloged: registration pays the preparation once; the query itself
    // touches only the persisted trees.
    let mut env_c = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let (ir, ih) = env_c
        .unaccounted(|env| {
            Ok::<_, unified_spatial_join::service::ServiceError>((
                catalog.register(env, "roads", &w.roads)?,
                catalog.register(env, "hydro", &w.hydro)?,
            ))
        })
        .unwrap();
    env_c.device.reset_stats();
    let left = catalog.get(ir).unwrap().input();
    let right = catalog.get(ih).unwrap().input();
    let (cat, cat_pairs) = StJoin::default()
        .run_collect(&mut env_c, left, right)
        .unwrap();

    assert!(cat.pairs > 0);
    assert_eq!(cat.pairs, uncat.pairs);
    assert_eq!(sorted(cat_pairs), sorted(uncat_pairs), "pair sets must be identical");
    let cat_io = cat.io.pages_read + cat.io.pages_written;
    let uncat_io = uncat.io.pages_read + uncat.io.pages_written;
    assert!(
        cat_io < uncat_io,
        "cataloged ST must charge strictly less I/O ({cat_io} vs {uncat_io} pages)"
    );
    // The uncataloged run writes the throwaway indexes; the cataloged one
    // writes nothing at all.
    assert!(uncat.io.pages_written > 0);
    assert_eq!(cat.io.pages_written, 0);
}

/// The sort-based algorithms save the same way: a cataloged SSSJ reads the
/// persisted sorted run instead of sorting.
#[test]
fn cataloged_sort_based_joins_skip_the_sort() {
    let w = workload(600, 3);
    for algo in [Algo::Sssj, Algo::Pq, Algo::Pbsm] {
        let mut env_u = SimEnv::new(MachineConfig::machine3());
        let (roads, hydro) = env_u.unaccounted(|env| {
            (
                unified_spatial_join::io::ItemStream::from_items(env, &w.roads).unwrap(),
                unified_spatial_join::io::ItemStream::from_items(env, &w.hydro).unwrap(),
            )
        });
        env_u.device.reset_stats();
        let uncat = SpatialQuery::new(JoinInput::Stream(&roads), JoinInput::Stream(&hydro))
            .algorithm(algo)
            .run(&mut env_u)
            .unwrap();

        let mut env_c = SimEnv::new(MachineConfig::machine3());
        let mut catalog = Catalog::new();
        let (ir, ih) = (
            env_c.unaccounted(|env| catalog.register(env, "roads", &w.roads)).unwrap(),
            env_c.unaccounted(|env| catalog.register(env, "hydro", &w.hydro)).unwrap(),
        );
        env_c.device.reset_stats();
        let left = catalog.get(ir).unwrap().input();
        let right = catalog.get(ih).unwrap().input();
        let cat = SpatialQuery::new(left, right).algorithm(algo).run(&mut env_c).unwrap();

        assert_eq!(cat.pairs, uncat.pairs, "{algo:?}");
        let cat_io = cat.io.pages_read + cat.io.pages_written;
        let uncat_io = uncat.io.pages_read + uncat.io.pages_written;
        assert!(
            cat_io < uncat_io,
            "{algo:?}: cataloged must charge less I/O ({cat_io} vs {uncat_io})"
        );
    }
}

/// Acceptance criterion 2 + the concurrent-gauge satellite: a 16-request
/// mixed batch under a 16 MB shared budget completes with every per-query
/// peak inside its granted budget, nonzero deferrals, and the admission
/// gauge's high-water mark inside the limit.
#[test]
fn sixteen_concurrent_requests_respect_a_16mb_shared_budget() {
    let limit = 16 * 1024 * 1024;
    let per_query = 6 * 1024 * 1024;
    let w = workload(400, 11);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let ir = catalog.register(&mut env, "roads", &w.roads).unwrap();
    let ih = catalog.register(&mut env, "hydro", &w.hydro).unwrap();
    let region = w.region;
    let service = Service::new(
        env,
        catalog,
        ServiceConfig::default().with_workers(4).with_memory_limit(limit),
    );

    // 16 mixed requests (joins across all algorithms + window selections),
    // each demanding 6 MB — at most two can hold reservations at once —
    // plus one high-priority 12 MB request admitted first, which leaves
    // less than one regular budget of headroom and therefore *forces* a
    // recorded deferral regardless of scheduling timing.
    let heavy = 12 * 1024 * 1024;
    let mut requests = Vec::new();
    for i in 0..16u32 {
        let request = match i % 4 {
            0 => QueryRequest::join(ir, ih).with_algorithm(Algo::Sssj),
            1 => QueryRequest::join(ir, ih).with_algorithm(Algo::Pq),
            2 => QueryRequest::join(ir, ih).with_algorithm(Algo::St),
            _ => QueryRequest::window(
                ir,
                Rect::from_coords(
                    region.lo.x,
                    region.lo.y,
                    region.lo.x + region.width() * 0.5,
                    region.lo.y + region.height() * 0.5,
                ),
            ),
        };
        requests.push(if i == 0 {
            request.with_memory_budget(heavy).with_priority(1)
        } else {
            request.with_memory_budget(per_query)
        });
    }
    let report = service.run(requests);

    assert_eq!(report.stats.submitted, 16);
    assert_eq!(report.stats.completed, 16, "{}", report.stats);
    assert_eq!(report.stats.failed, 0);
    assert!(
        report.stats.deferrals > 0,
        "2.67x oversubscription must record deferred admissions"
    );
    // The admission gauge bounds the sum of concurrently granted budgets.
    assert!(report.stats.peak_admitted_bytes <= limit);
    assert!(report.stats.peak_admitted_bytes >= per_query, "something ran");
    // Per-worker budget semantics: every query's *measured* peak stays
    // within its granted budget, hence within the shared limit.
    let mut total_grants = 0usize;
    for outcome in &report.outcomes {
        let result = outcome.result().expect("completed");
        let expected_grant = if outcome.request == 0 { heavy } else { per_query };
        assert_eq!(outcome.stats.admitted_bytes, expected_grant);
        assert!(
            result.memory.peak_bytes <= outcome.stats.admitted_bytes,
            "query {} peaked at {} over its {} budget",
            outcome.request,
            result.memory.peak_bytes,
            outcome.stats.admitted_bytes
        );
        assert!(result.memory.peak_bytes <= limit);
        total_grants += outcome.stats.admitted_bytes;
    }
    // The workload genuinely oversubscribed the budget — without admission
    // control the grants would have exceeded the limit six times over.
    assert!(total_grants > limit);
    // Identical joins agree regardless of scheduling.
    let joins: Vec<u64> = (0..16)
        .filter(|i| i % 4 == 0)
        .map(|i| report.outcomes[i].result().unwrap().pairs)
        .collect();
    assert!(joins.windows(2).all(|p| p[0] == p[1]), "identical joins must agree");
}

/// Catalog persistence: save on the registration device, reload through a
/// worker fork over the snapshot, query from the reloaded handle.
#[test]
fn catalog_persists_and_reopens_across_a_device_snapshot() {
    let w = workload(800, 5);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    catalog.register(&mut env, "roads", &w.roads).unwrap();
    catalog.register(&mut env, "hydro", &w.hydro).unwrap();
    let root = catalog.save(&mut env).unwrap();

    let base = env.device.snapshot();
    let mut worker = env.fork_with_base(base);
    let reopened = Catalog::load(&mut worker, root).unwrap();
    assert_eq!(reopened.len(), 2);

    let (_, roads) = reopened.lookup("roads").unwrap();
    let (_, hydro) = reopened.lookup("hydro").unwrap();
    let reopened_count = SpatialQuery::new(roads.input(), hydro.input())
        .algorithm(Algo::Pq)
        .count(&mut worker)
        .unwrap();
    let original_count = SpatialQuery::new(
        catalog.lookup("roads").unwrap().1.input(),
        catalog.lookup("hydro").unwrap().1.input(),
    )
    .algorithm(Algo::Pq)
    .count(&mut env)
    .unwrap();
    assert_eq!(reopened_count, original_count);
    assert!(reopened_count > 0);
}

/// Cancellation mid-batch: queued requests carrying a cancelled token
/// resolve without running, while the rest of the batch completes.
#[test]
fn cancellation_stops_queued_queries() {
    let w = workload(800, 9);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let ir = catalog.register(&mut env, "roads", &w.roads).unwrap();
    let ih = catalog.register(&mut env, "hydro", &w.hydro).unwrap();
    let service = Service::new(env, catalog, ServiceConfig::default().with_workers(2));

    let token = CancelToken::new();
    token.cancel();
    let mut requests = vec![QueryRequest::join(ir, ih).with_algorithm(Algo::Sssj)];
    for _ in 0..4 {
        requests.push(
            QueryRequest::join(ir, ih)
                .with_algorithm(Algo::Sssj)
                .with_cancel(token.clone()),
        );
    }
    let report = service.run(requests);
    assert_eq!(report.stats.completed, 1);
    assert_eq!(report.stats.cancelled, 4);
    for outcome in &report.outcomes[1..] {
        assert!(matches!(outcome.status, QueryStatus::Cancelled(None)), "{:?}", outcome.status);
        assert_eq!(outcome.stats.admitted_bytes, 0);
    }
}

/// The plan cache memoizes across batches: the same query shape planned in
/// batch 1 is a hit in batch 2.
#[test]
fn plan_cache_persists_across_batches() {
    let w = workload(600, 13);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let mut catalog = Catalog::new();
    let ir = catalog.register(&mut env, "roads", &w.roads).unwrap();
    let ih = catalog.register(&mut env, "hydro", &w.hydro).unwrap();
    let service = Service::new(env, catalog, ServiceConfig::default().with_workers(1));

    let first = service.run(vec![QueryRequest::join(ir, ih)]);
    assert_eq!(first.stats.plan_cache_misses, 1);
    assert_eq!(first.stats.plan_cache_hits, 0);
    let second = service.run(vec![QueryRequest::join(ir, ih)]);
    assert_eq!(second.stats.plan_cache_misses, 0);
    assert_eq!(second.stats.plan_cache_hits, 1);
    assert_eq!(
        first.outcomes[0].result().unwrap().pairs,
        second.outcomes[0].result().unwrap().pairs
    );
}
