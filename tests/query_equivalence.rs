//! The query-builder acceptance suite.
//!
//! Three properties gate the `SpatialQuery` redesign:
//!
//! 1. **Equivalence** — for every algorithm and two workload presets, the
//!    builder produces a byte-identical `JoinResult` (every I/O, CPU and
//!    memory counter) and the identical pair sequence as the direct
//!    `JoinOperator` / `ParallelJoin` entry points, and `Algo::Auto` picks
//!    exactly the plan `CostBasedJoin` picks.
//! 2. **Predicates** — `WithinDistance` agrees with a brute-force oracle on
//!    all four algorithms, serially and in parallel.
//! 3. **Early termination** — a LIMIT sink stops the join's I/O short of a
//!    full run, and every algorithm × predicate × execution × sink
//!    combination is constructible and consistent.

use unified_spatial_join::io::ItemStream;
use unified_spatial_join::join::JoinAlgorithm;
use unified_spatial_join::prelude::*;

type Prepared = (SimEnv, Workload, RTree, RTree, ItemStream, ItemStream);

fn prepare(preset: Preset, scale: u64, seed: u64) -> Prepared {
    let workload = WorkloadSpec::preset(preset).with_scale(scale).generate(seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (roads_tree, hydro_tree, roads_stream, hydro_stream) = env.unaccounted(|env| {
        (
            RTree::bulk_load(env, &workload.roads).unwrap(),
            RTree::bulk_load(env, &workload.hydro).unwrap(),
            ItemStream::from_items(env, &workload.roads).unwrap(),
            ItemStream::from_items(env, &workload.hydro).unwrap(),
        )
    });
    env.device.reset_stats();
    (env, workload, roads_tree, hydro_tree, roads_stream, hydro_stream)
}

/// The natural input representation of an algorithm, as in the paper's setup.
fn inputs_for<'a>(
    alg: JoinAlgorithm,
    roads_tree: &'a RTree,
    hydro_tree: &'a RTree,
    roads_stream: &'a ItemStream,
    hydro_stream: &'a ItemStream,
) -> (JoinInput<'a>, JoinInput<'a>) {
    match alg {
        JoinAlgorithm::Pq | JoinAlgorithm::St => (
            JoinInput::Indexed(roads_tree),
            JoinInput::Indexed(hydro_tree),
        ),
        _ => (
            JoinInput::Stream(roads_stream),
            JoinInput::Stream(hydro_stream),
        ),
    }
}

#[test]
fn builder_is_byte_identical_to_the_legacy_serial_api() {
    for (preset, scale) in [(Preset::NJ, 400), (Preset::NY, 800)] {
        for alg in JoinAlgorithm::all() {
            // Each path runs on its own freshly prepared environment (the
            // generator is deterministic, so the data and disk layout are
            // identical) — the simulated disk head is stateful, and a shared
            // device would misclassify one sequential/random read between
            // back-to-back runs.
            let (mut env, workload, rt, ht, rs, hs) = prepare(preset, scale, 11);
            let (left, right) = inputs_for(alg, &rt, &ht, &rs, &hs);

            // Legacy path: the concrete structs driven directly through
            // `JoinOperator` (closures implement `PairSink`).
            let mut legacy_pairs = Vec::new();
            let legacy: JoinResult = match alg {
                JoinAlgorithm::Sssj => JoinOperator::run_with(
                    &SssjJoin::default(),
                    &mut env,
                    left,
                    right,
                    &mut |a, b| legacy_pairs.push((a, b)),
                ),
                JoinAlgorithm::Pbsm => JoinOperator::run_with(
                    &PbsmJoin::default(),
                    &mut env,
                    left,
                    right,
                    &mut |a, b| legacy_pairs.push((a, b)),
                ),
                JoinAlgorithm::Pq => JoinOperator::run_with(
                    &PqJoin::default(),
                    &mut env,
                    left,
                    right,
                    &mut |a, b| legacy_pairs.push((a, b)),
                ),
                JoinAlgorithm::St => JoinOperator::run_with(
                    &StJoin::default(),
                    &mut env,
                    left,
                    right,
                    &mut |a, b| legacy_pairs.push((a, b)),
                ),
            }
            .unwrap();

            // Builder path, clean-room environment.
            let (mut env2, _w2, rt2, ht2, rs2, hs2) = prepare(preset, scale, 11);
            let (left2, right2) = inputs_for(alg, &rt2, &ht2, &rs2, &hs2);
            let (result, pairs) = SpatialQuery::new(left2, right2)
                .algorithm(alg.into())
                .collect(&mut env2)
                .unwrap();

            assert_eq!(result, legacy, "{preset:?}/{}: JoinResult drift", alg.name());
            assert_eq!(pairs, legacy_pairs, "{preset:?}/{}: pair drift", alg.name());
            assert_eq!(result.pairs, workload.reference_join_size());
        }
    }
}

#[test]
fn builder_is_byte_identical_to_the_legacy_parallel_api() {
    for (preset, scale) in [(Preset::NJ, 400), (Preset::NY, 800)] {
        let (mut env, workload, _rt, _ht, rs, hs) = prepare(preset, scale, 7);
        let legacy_join = ParallelJoin::new(PqJoin::default(), HilbertPartitioner::default())
            .with_threads(4)
            .with_shards(6);
        let (legacy, legacy_pairs) = legacy_join
            .run_collect(&mut env, JoinInput::Stream(&rs), JoinInput::Stream(&hs))
            .unwrap();

        // Clean-room environment for the builder path (see the serial test).
        let (mut env2, _w2, _rt2, _ht2, rs2, hs2) = prepare(preset, scale, 7);
        let (result, pairs) = SpatialQuery::new(JoinInput::Stream(&rs2), JoinInput::Stream(&hs2))
            .algorithm(Algo::Pq)
            .execution(Execution::Parallel {
                partitioner: PartitionStrategy::Hilbert,
                threads: 4,
                shards: 6,
            })
            .collect(&mut env2)
            .unwrap();

        assert_eq!(result, legacy, "{preset:?}: parallel JoinResult drift");
        assert_eq!(pairs, legacy_pairs, "{preset:?}: parallel pair drift");
        assert_eq!(result.pairs, workload.reference_join_size());
    }
}

#[test]
fn auto_picks_the_same_plan_as_cost_based_join() {
    for (preset, scale) in [(Preset::NJ, 400), (Preset::NY, 800)] {
        let (mut env, _workload, rt, ht, _rs, _hs) = prepare(preset, scale, 3);
        let (legacy_plan, legacy_est, legacy_res) = CostBasedJoin::default()
            .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
            .unwrap();

        // Clean-room environment for the builder path (see the serial test).
        let (mut env2, _w2, rt2, ht2, _rs2, _hs2) = prepare(preset, scale, 3);
        let q = SpatialQuery::new(JoinInput::Indexed(&rt2), JoinInput::Indexed(&ht2));
        let plan = q.plan(&mut env2).unwrap();
        assert_eq!(plan.chosen, Some(legacy_plan), "{preset:?}");
        assert_eq!(plan.cost, Some(legacy_est), "{preset:?}");

        let (mut env3, _w3, rt3, ht3, _rs3, _hs3) = prepare(preset, scale, 3);
        let result = SpatialQuery::new(JoinInput::Indexed(&rt3), JoinInput::Indexed(&ht3))
            .run(&mut env3)
            .unwrap();
        assert_eq!(result, legacy_res, "{preset:?}: auto execution drift");
    }
}

/// Brute-force oracle for the ε-distance predicate: Chebyshev (L∞) distance
/// between MBRs at most ε, implemented independently of the library's
/// expansion machinery.
fn brute_within(
    left: &[unified_spatial_join::geom::Item],
    right: &[unified_spatial_join::geom::Item],
    eps: f32,
) -> Vec<(u32, u32)> {
    let dist_1d = |lo_a: f32, hi_a: f32, lo_b: f32, hi_b: f32| -> f32 {
        (lo_b - hi_a).max(lo_a - hi_b).max(0.0)
    };
    let mut out = Vec::new();
    for a in left {
        for b in right {
            let dx = dist_1d(a.rect.lo.x, a.rect.hi.x, b.rect.lo.x, b.rect.hi.x);
            let dy = dist_1d(a.rect.lo.y, a.rect.hi.y, b.rect.lo.y, b.rect.hi.y);
            if dx.max(dy) <= eps {
                out.push((a.id, b.id));
            }
        }
    }
    out.sort_unstable();
    out
}

#[test]
fn within_distance_matches_the_brute_force_oracle_on_all_algorithms() {
    let (mut env, workload, rt, ht, rs, hs) = prepare(Preset::NJ, 1_500, 21);
    let eps = workload.region.width() * 0.01;
    let expected = brute_within(&workload.roads, &workload.hydro, eps);
    let intersecting = workload.reference_join_size() as usize;
    assert!(
        expected.len() > intersecting,
        "ε must add near-miss pairs ({} vs {intersecting})",
        expected.len()
    );

    for alg in JoinAlgorithm::all() {
        let (left, right) = inputs_for(alg, &rt, &ht, &rs, &hs);
        for execution in [
            Execution::Serial,
            Execution::Parallel {
                partitioner: PartitionStrategy::Hilbert,
                threads: 4,
                shards: 5,
            },
        ] {
            let (_, mut pairs) = SpatialQuery::new(left, right)
                .algorithm(alg.into())
                .predicate(Predicate::WithinDistance(eps))
                .execution(execution)
                .collect(&mut env)
                .unwrap();
            pairs.sort_unstable();
            assert_eq!(pairs, expected, "{}/{execution:?}", alg.name());
        }
    }
}

#[test]
fn limit_sink_stops_io_short_of_a_full_run() {
    let (mut env, _workload, rt, ht, _rs, _hs) = prepare(Preset::NY, 60, 5);
    let q = SpatialQuery::new(
        JoinInput::Indexed(&rt),
        JoinInput::Indexed(&ht),
    )
    .algorithm(Algo::Pq);

    let full = q.run(&mut env).unwrap();
    assert!(full.pairs > 100);
    assert!(full.index_page_requests > 20);

    let (limited, pairs) = q.first(&mut env, 25).unwrap();
    assert_eq!(pairs.len(), 25);
    assert_eq!(limited.pairs, 25);
    assert!(
        limited.index_page_requests < full.index_page_requests / 2,
        "LIMIT 25 must stop the traversal early ({} of {} page requests)",
        limited.index_page_requests,
        full.index_page_requests
    );
    assert!(
        limited.io.pages_read < full.io.pages_read,
        "LIMIT must save read I/O ({} of {})",
        limited.io.pages_read,
        full.io.pages_read
    );
}

/// Every (algorithm × predicate × execution × sink) combination is
/// constructible through the builder and internally consistent: collect
/// agrees with count, and limit truncates the same stream.
#[test]
fn every_combination_is_constructible_and_consistent() {
    let (mut env, workload, rt, ht, rs, hs) = prepare(Preset::NJ, 1_200, 9);
    let eps = workload.region.width() * 0.005;

    for alg in JoinAlgorithm::all() {
        let (left, right) = inputs_for(alg, &rt, &ht, &rs, &hs);
        for predicate in [Predicate::Intersects, Predicate::WithinDistance(eps)] {
            for execution in [
                Execution::Serial,
                Execution::Parallel {
                    partitioner: PartitionStrategy::Tile,
                    threads: 3,
                    shards: 4,
                },
            ] {
                let q = SpatialQuery::new(left, right)
                    .algorithm(alg.into())
                    .predicate(predicate)
                    .execution(execution);
                let label = format!("{}/{predicate:?}/{execution:?}", alg.name());

                // count sink
                let count = q.count(&mut env).unwrap();
                assert!(count > 0, "{label}: empty result");
                // collect sink
                let (res, pairs) = q.collect(&mut env).unwrap();
                assert_eq!(pairs.len() as u64, count, "{label}: collect/count drift");
                assert_eq!(res.pairs, count, "{label}: result counter drift");
                // limit sink
                let limit = (count / 2).max(1);
                let (res_lim, lim_pairs) = q.first(&mut env, limit).unwrap();
                assert_eq!(lim_pairs.len() as u64, limit, "{label}: limit size");
                assert_eq!(res_lim.pairs, limit, "{label}: limit counter");
                assert_eq!(
                    lim_pairs.as_slice(),
                    &pairs[..limit as usize],
                    "{label}: limit must be a prefix of the full stream"
                );
            }
        }
    }
}

#[test]
fn contains_predicate_is_a_subset_of_intersects_everywhere() {
    let (mut env, workload, rt, ht, rs, hs) = prepare(Preset::NJ, 2_000, 13);
    for alg in JoinAlgorithm::all() {
        let (left, right) = inputs_for(alg, &rt, &ht, &rs, &hs);
        let (_, mut contains) = SpatialQuery::new(left, right)
            .algorithm(alg.into())
            .predicate(Predicate::Contains)
            .collect(&mut env)
            .unwrap();
        contains.sort_unstable();
        let expected: Vec<(u32, u32)> = {
            let mut v: Vec<(u32, u32)> = workload
                .roads
                .iter()
                .flat_map(|a| {
                    workload
                        .hydro
                        .iter()
                        .filter(|b| a.rect.contains(&b.rect))
                        .map(|b| (a.id, b.id))
                        .collect::<Vec<_>>()
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(contains, expected, "{}", alg.name());
    }
}
