//! Workspace-level integration tests: the full pipeline from workload
//! generation through index construction to every join algorithm, exercised
//! through the facade crate's public API only.

use unified_spatial_join::io::ItemStream;
use unified_spatial_join::join::{multiway::three_way_join, JoinAlgorithm};
use unified_spatial_join::prelude::*;

fn prepare(
    preset: Preset,
    scale: u64,
    seed: u64,
) -> (
    SimEnv,
    unified_spatial_join::datagen::Workload,
    RTree,
    RTree,
    ItemStream,
    ItemStream,
) {
    let workload = WorkloadSpec::preset(preset).with_scale(scale).generate(seed);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let (rt, ht, rs, hs) = env.unaccounted(|env| {
        (
            RTree::bulk_load(env, &workload.roads).unwrap(),
            RTree::bulk_load(env, &workload.hydro).unwrap(),
            ItemStream::from_items(env, &workload.roads).unwrap(),
            ItemStream::from_items(env, &workload.hydro).unwrap(),
        )
    });
    env.device.reset_stats();
    (env, workload, rt, ht, rs, hs)
}

#[test]
fn full_pipeline_all_algorithms_agree_with_the_reference_join() {
    let (mut env, workload, rt, ht, rs, hs) = prepare(Preset::NJ, 300, 1);
    let expected = workload.reference_join_size();
    assert!(expected > 0);

    for alg in JoinAlgorithm::all() {
        let result = match alg {
            JoinAlgorithm::Pq | JoinAlgorithm::St => alg
                .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
                .unwrap(),
            _ => alg
                .run(&mut env, JoinInput::Stream(&rs), JoinInput::Stream(&hs))
                .unwrap(),
        };
        assert_eq!(result.pairs, expected, "{} disagrees", alg.name());
        env.device.reset_stats();
    }
}

#[test]
fn pq_is_optimal_in_page_requests_and_small_in_memory() {
    let (mut env, workload, rt, ht, _rs, _hs) = prepare(Preset::NY, 300, 2);
    let result = PqJoin::default()
        .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
        .unwrap();
    // Table 4: exactly one request per node of either index.
    assert_eq!(result.index_page_requests, rt.nodes() + ht.nodes());
    // Table 3: the priority queue working set is far smaller than the indexes
    // it traverses (at the paper's unscaled sizes it is below 1 % of the
    // data; at this tiny test scale the leaf staging dominates, so the bound
    // checked here is the index size).
    let _ = &workload;
    let index_bytes = (rt.size_bytes() + ht.size_bytes()) as usize;
    assert!(result.memory.priority_queue_bytes < index_bytes / 2);
    // Figure 2: the cost model produces non-trivial CPU and I/O components.
    let cost = result.observed_cost(&MachineConfig::machine3());
    assert!(cost.cpu_secs > 0.0 && cost.io_secs > 0.0);
    assert!(result.estimated_cost(&MachineConfig::machine3()).io_secs >= cost.io_secs * 0.99);
}

#[test]
fn mixed_representation_joins_are_supported_by_pq_only_path() {
    // The defining feature of the unified algorithm: one side indexed, one
    // side a flat file, without building a new index.
    let (mut env, _w, rt, _ht, _rs, hs) = prepare(Preset::NJ, 500, 3);
    let mixed = PqJoin::default()
        .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Stream(&hs))
        .unwrap();
    env.device.reset_stats();
    let indexed_only_left = PqJoin::default()
        .run(&mut env, JoinInput::Stream(&hs), JoinInput::Indexed(&rt))
        .unwrap();
    assert_eq!(mixed.pairs, indexed_only_left.pairs);
    assert!(mixed.pairs > 0);
}

#[test]
fn cost_based_selector_picks_a_plan_and_returns_correct_results() {
    let (mut env, workload, rt, ht, _rs, _hs) = prepare(Preset::NJ, 300, 4);
    let (plan, estimate, result) = CostBasedJoin::default()
        .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
        .unwrap();
    assert_eq!(result.pairs, workload.reference_join_size());
    // Road and hydro cover the same region, so the whole index participates
    // and the sort-based plan should be chosen on a modern-ratio disk.
    assert!(estimate.touched_fraction > 0.5);
    assert_eq!(plan, JoinPlan::NonIndexed);
}

#[test]
fn three_way_join_runs_through_the_facade() {
    let (mut env, workload, rt, ht, _rs, _hs) = prepare(Preset::NJ, 800, 5);
    let zones_stream = env.unaccounted(|env| {
        // Use the hydro MBRs shifted as a third relation.
        let zones: Vec<_> = workload
            .hydro
            .iter()
            .map(|it| unified_spatial_join::geom::Item::new(it.rect, it.id ^ 0x2000_0000))
            .collect();
        ItemStream::from_items(env, &zones).unwrap()
    });
    let mut triples = 0u64;
    let res = three_way_join(
        &mut env,
        JoinInput::Indexed(&rt),
        JoinInput::Indexed(&ht),
        JoinInput::Stream(&zones_stream),
        &mut |_, _, _| triples += 1,
    )
    .unwrap();
    assert_eq!(res.triples, triples);
    // Each (road, hydro) pair intersects the zone equal to that hydro MBR, so
    // there is at least one triple per pair.
    assert!(res.triples >= res.intermediate_pairs);
}

#[test]
fn observed_costs_preserve_the_papers_machine_ordering() {
    // The same join is more expensive on the slow-CPU Machine 1 than on
    // Machine 3, and the random-heavy PQ suffers more on the slow-seek
    // Machine 2 than on Machine 3.
    let (mut env, _w, rt, ht, _rs, _hs) = prepare(Preset::NY, 300, 6);
    let result = PqJoin::default()
        .run(&mut env, JoinInput::Indexed(&rt), JoinInput::Indexed(&ht))
        .unwrap();
    let m1 = result.observed_cost(&MachineConfig::machine1());
    let m2 = result.observed_cost(&MachineConfig::machine2());
    let m3 = result.observed_cost(&MachineConfig::machine3());
    assert!(m1.cpu_secs > m3.cpu_secs);
    assert!(m2.io_secs > m3.io_secs);
    assert!(m1.total_secs() > m3.total_secs());
}
