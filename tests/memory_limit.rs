//! The memory-governor invariant suite.
//!
//! The paper's evaluation is entirely about behaviour under a *bounded
//! internal memory*; these tests make `SimEnv::memory_limit` a hard, tested
//! invariant:
//!
//! * every algorithm × limit × distribution × execution combination reports
//!   a measured `memory.peak_bytes` within the limit and the exact pair set;
//! * a pathologically skewed dataset (every rectangle inside *one* PBSM
//!   tile) is recursively repartitioned under a tiny limit and still matches
//!   the brute-force oracle byte for byte;
//! * the acceptance matrix: the NJ preset at a 4 MB limit, all algorithm ×
//!   predicate × execution combinations, byte-identical to the
//!   unlimited-memory run.

use unified_spatial_join::prelude::*;
use usj_datagen::rng::SmallRng;
use usj_datagen::{Preset, WorkloadSpec};
use usj_geom::{Item, Rect};
use usj_io::{ItemStream, MachineConfig, SimEnv};

const MB: usize = 1024 * 1024;

fn env_with(limit: usize) -> SimEnv {
    SimEnv::new(MachineConfig::machine3()).with_memory_limit(limit)
}

/// Uniformly distributed boxes over `region`.
fn uniform(n: u32, region: Rect, seed: u64, id_base: u32) -> Vec<Item> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range_f32(region.lo.x, region.hi.x);
            let y = rng.gen_range_f32(region.lo.y, region.hi.y);
            let w = rng.gen_range_f32(0.1, region.width() * 0.01);
            let h = rng.gen_range_f32(0.1, region.height() * 0.01);
            Item::new(Rect::from_coords(x, y, x + w, y + h), id_base + i)
        })
        .collect()
}

/// Every rectangle inside `cluster` — with a large `region` hint this is
/// "all data in one PBSM tile".
fn skewed(n: u32, cluster: Rect, seed: u64, id_base: u32) -> Vec<Item> {
    uniform(n, cluster, seed, id_base)
}

fn brute_pairs(a: &[Item], b: &[Item], predicate: Predicate) -> Vec<(u32, u32)> {
    let mut out: Vec<(u32, u32)> = a
        .iter()
        .flat_map(|x| {
            b.iter()
                .filter(|y| predicate.matches(&x.rect, &y.rect))
                .map(|y| (x.id, y.id))
                .collect::<Vec<_>>()
        })
        .collect();
    out.sort_unstable();
    out
}

fn collect_sorted(
    env: &mut SimEnv,
    left: &ItemStream,
    right: &ItemStream,
    algo: Algo,
    predicate: Predicate,
    execution: Execution,
    region: Rect,
) -> (JoinResult, Vec<(u32, u32)>) {
    let (res, mut pairs) = SpatialQuery::new(JoinInput::Stream(left), JoinInput::Stream(right))
        .algorithm(algo)
        .predicate(predicate)
        .execution(execution)
        .region_hint(region)
        .collect(env)
        .unwrap_or_else(|e| panic!("{algo:?}/{predicate:?}/{execution:?} failed: {e}"));
    pairs.sort_unstable();
    (res, pairs)
}

/// Satellite: `memory.peak_bytes <= memory_limit` for all 4 algorithms ×
/// {4 MB, 16 MB, 64 MB} × {uniform, skewed}, serial and parallel, with the
/// exact pair set every time.
#[test]
fn peak_memory_respects_the_limit_across_the_matrix() {
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let cluster = Rect::from_coords(100.0, 100.0, 104.0, 104.0);
    let datasets = [
        ("uniform", uniform(1500, region, 7, 0), uniform(1500, region, 8, 1_000_000)),
        ("skewed", skewed(1500, cluster, 9, 0), skewed(1500, cluster, 10, 1_000_000)),
    ];
    for (name, left, right) in &datasets {
        let expected = brute_pairs(left, right, Predicate::Intersects);
        for limit in [4 * MB, 16 * MB, 64 * MB] {
            let mut env = env_with(limit);
            let sl = ItemStream::from_items_with_block(&mut env, left, 8).unwrap();
            let sr = ItemStream::from_items_with_block(&mut env, right, 8).unwrap();
            for algo in [Algo::Sssj, Algo::Pbsm, Algo::Pq, Algo::St] {
                for execution in [Execution::Serial, Execution::parallel()] {
                    let (res, pairs) = collect_sorted(
                        &mut env,
                        &sl,
                        &sr,
                        algo,
                        Predicate::Intersects,
                        execution,
                        region,
                    );
                    assert_eq!(
                        pairs, expected,
                        "{name}/{algo:?}/{execution:?} @ {} MB: wrong pair set",
                        limit / MB
                    );
                    assert!(res.memory.peak_bytes > 0, "peak must be measured");
                    assert!(
                        res.memory.peak_bytes <= limit,
                        "{name}/{algo:?}/{execution:?} @ {} MB: peak {} exceeds the limit",
                        limit / MB,
                        res.memory.peak_bytes
                    );
                }
            }
        }
    }
}

/// Satellite: the differential skew test. Every rectangle lives in one PBSM
/// tile of a much larger hinted region, the memory limit is tiny, and the
/// recursive repartitioning must still produce byte-identical pairs vs the
/// brute-force oracle (and vs an unlimited-memory run).
#[test]
fn one_tile_skew_is_repartitioned_recursively_and_exactly() {
    // Region 1000×1000 with a 128×128 tile grid → tiles are 7.8 wide; the
    // cluster spans 4 units inside tile (12, 12): one tile holds everything.
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let cluster = Rect::from_coords(100.0, 100.0, 104.0, 104.0);
    let left = skewed(2500, cluster, 21, 0);
    let right = skewed(2500, cluster, 22, 1_000_000);
    let oracle = brute_pairs(&left, &right, Predicate::Intersects);
    assert!(!oracle.is_empty());

    // 2500 items/side = 100 KB of data; 3× envelope ≈ 300 KB per partition.
    // A 160 KB limit cannot fit that, so the single overfull partition must
    // split recursively over the cluster's own bounding box.
    let tiny = 160 * 1024;
    let mut env = env_with(tiny);
    env.memory.begin_phase();
    let sl = ItemStream::from_items_with_block(&mut env, &left, 2).unwrap();
    let sr = ItemStream::from_items_with_block(&mut env, &right, 2).unwrap();
    let (limited, mut pairs) = PbsmJoin::default()
        .with_region(region)
        .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .unwrap();
    pairs.sort_unstable();
    assert_eq!(pairs, oracle, "skewed PBSM must match the brute-force oracle");
    assert!(
        limited.memory.peak_bytes <= tiny,
        "peak {} exceeds the tiny limit",
        limited.memory.peak_bytes
    );

    // Unlimited run for the byte-identical comparison.
    let mut big = env_with(256 * MB);
    let bl = ItemStream::from_items_with_block(&mut big, &left, 2).unwrap();
    let br = ItemStream::from_items_with_block(&mut big, &right, 2).unwrap();
    let (unlimited, mut upairs) = PbsmJoin::default()
        .with_region(region)
        .run_collect(&mut big, JoinInput::Stream(&bl), JoinInput::Stream(&br))
        .unwrap();
    upairs.sort_unstable();
    assert_eq!(pairs, upairs);
    assert_eq!(limited.pairs, unlimited.pairs);
    // The limited run paid for the repartitioning in extra I/O.
    assert!(
        limited.io.pages_written > unlimited.io.pages_written,
        "recursive repartitioning must rewrite the overfull partition ({} vs {})",
        limited.io.pages_written,
        unlimited.io.pages_written
    );
}

/// Identical rectangles cannot be separated by any grid: the chunked
/// fallback must bound memory and still report the full cross product.
#[test]
fn indivisible_identical_rectangles_fall_back_to_chunked_join() {
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let same = Rect::from_coords(50.0, 50.0, 51.0, 51.0);
    let left: Vec<Item> = (0..1200).map(|i| Item::new(same, i)).collect();
    let right: Vec<Item> = (0..1200).map(|i| Item::new(same, 1_000_000 + i)).collect();

    let tiny = 128 * 1024;
    let mut env = env_with(tiny);
    env.memory.begin_phase();
    let sl = ItemStream::from_items_with_block(&mut env, &left, 2).unwrap();
    let sr = ItemStream::from_items_with_block(&mut env, &right, 2).unwrap();
    let res = PbsmJoin::default()
        .with_region(region)
        .run(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .unwrap();
    assert_eq!(res.pairs, 1200 * 1200);
    assert!(res.memory.peak_bytes <= tiny);
}

/// The spilling sweep engages end-to-end: SSSJ under a small limit on dense
/// long-lived rectangles spills, charges the I/O, and stays exact.
#[test]
fn sssj_spills_under_pressure_and_stays_exact() {
    // All rectangles alive at the same sweep position.
    let tall = |n: u32, base: u32| -> Vec<Item> {
        (0..n)
            .map(|i| {
                let x = (i % 41) as f32;
                Item::new(
                    Rect::from_coords(x, i as f32 * 0.01, x + 2.0, i as f32 * 0.01 + 100.0),
                    base + i,
                )
            })
            .collect()
    };
    let left = tall(2200, 0);
    let right = tall(2200, 1_000_000);
    let expected = brute_pairs(&left, &right, Predicate::Intersects);

    let limit = 192 * 1024;
    let mut env = env_with(limit);
    env.memory.begin_phase();
    let sl = ItemStream::from_items_with_block(&mut env, &left, 2).unwrap();
    let sr = ItemStream::from_items_with_block(&mut env, &right, 2).unwrap();
    let (res, mut pairs) = SssjJoin::default()
        .run_collect(&mut env, JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .unwrap();
    pairs.sort_unstable();
    assert_eq!(pairs, expected);
    assert!(res.sweep.spill_runs > 0, "the sweep must have spilled: {:?}", res.sweep);
    assert!(res.sweep.spilled_items > 0);
    assert!(res.memory.peak_bytes <= limit, "peak {}", res.memory.peak_bytes);
}

/// The acceptance matrix: every algorithm × predicate × execution
/// combination completes on the NJ preset under a 4 MB limit with
/// `memory.peak_bytes <= memory_limit` and pairs byte-identical to the
/// unlimited-memory run.
#[test]
fn nj_preset_at_4mb_matches_the_unlimited_run_for_every_combination() {
    let workload = WorkloadSpec::preset(Preset::NJ).with_scale(500).generate(42);
    let region = workload.region;
    let eps = region.width() * 0.002;
    let limit = 4 * MB;

    let mut small = env_with(limit);
    let s_roads = ItemStream::from_items(&mut small, &workload.roads).unwrap();
    let s_hydro = ItemStream::from_items(&mut small, &workload.hydro).unwrap();
    let mut big = env_with(256 * MB);
    let b_roads = ItemStream::from_items(&mut big, &workload.roads).unwrap();
    let b_hydro = ItemStream::from_items(&mut big, &workload.hydro).unwrap();

    for algo in [Algo::Sssj, Algo::Pbsm, Algo::Pq, Algo::St] {
        for predicate in [
            Predicate::Intersects,
            Predicate::WithinDistance(eps),
            Predicate::Contains,
        ] {
            for execution in [Execution::Serial, Execution::parallel()] {
                let (res, pairs) = collect_sorted(
                    &mut small, &s_roads, &s_hydro, algo, predicate, execution, region,
                );
                let (_, expected) = collect_sorted(
                    &mut big, &b_roads, &b_hydro, algo, predicate, execution, region,
                );
                assert_eq!(
                    pairs, expected,
                    "{algo:?}/{predicate:?}/{execution:?}: 4 MB run diverged from unlimited"
                );
                assert!(
                    res.memory.peak_bytes <= limit,
                    "{algo:?}/{predicate:?}/{execution:?}: peak {} exceeds 4 MB",
                    res.memory.peak_bytes
                );
            }
        }
    }
}

/// ST at a quarter-megabyte limit with trees larger than the pool: the pool
/// fills, sheds pages and keeps going — the node-pair slack may not be
/// starved by the pool (regression test for the review finding that the
/// traversal could strand behind a full pool).
#[test]
fn st_completes_with_a_full_buffer_pool_at_a_quarter_megabyte() {
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let left = uniform(8_000, region, 31, 0);
    let right = uniform(8_000, region, 32, 1_000_000);
    let limit = 256 * 1024;

    let mut small = env_with(limit);
    let tl = usj_rtree::RTree::bulk_load(&mut small, &left).unwrap();
    let tr = usj_rtree::RTree::bulk_load(&mut small, &right).unwrap();
    let res = StJoin::default()
        .run(&mut small, JoinInput::Indexed(&tl), JoinInput::Indexed(&tr))
        .unwrap();
    assert!(res.memory.peak_bytes <= limit, "peak {}", res.memory.peak_bytes);

    let mut big = env_with(256 * MB);
    let bl = usj_rtree::RTree::bulk_load(&mut big, &left).unwrap();
    let br = usj_rtree::RTree::bulk_load(&mut big, &right).unwrap();
    let unlimited = StJoin::default()
        .run(&mut big, JoinInput::Indexed(&bl), JoinInput::Indexed(&br))
        .unwrap();
    assert_eq!(res.pairs, unlimited.pairs);
    // A starved pool may only ever pay *more* page requests, never fewer (on
    // this locality-friendly bulk-loaded layout the DFS working set happens
    // to fit, so the counts can be equal).
    assert!(
        res.index_page_requests >= unlimited.index_page_requests,
        "{} vs {}",
        res.index_page_requests,
        unlimited.index_page_requests
    );
}

/// The multiway cascade has no spilling mode, but it is still governed: on
/// inputs whose sweep state outgrows a tiny limit it fails loudly with
/// `MemoryLimitExceeded` instead of silently overcommitting, and succeeds
/// unchanged with ample memory.
#[test]
fn multiway_join_is_governed_not_silently_overcommitted() {
    let tall = |n: u32, base: u32| -> Vec<Item> {
        (0..n)
            .map(|i| {
                let x = (i % 29) as f32;
                Item::new(
                    Rect::from_coords(x, i as f32 * 0.01, x + 2.0, i as f32 * 0.01 + 100.0),
                    base + i,
                )
            })
            .collect()
    };
    let a = tall(400, 0);
    let b = tall(400, 1_000_000);
    let c = tall(400, 2_000_000);

    let mut big = env_with(256 * MB);
    let (sa, sb, sc) = (
        ItemStream::from_items_with_block(&mut big, &a, 2).unwrap(),
        ItemStream::from_items_with_block(&mut big, &b, 2).unwrap(),
        ItemStream::from_items_with_block(&mut big, &c, 2).unwrap(),
    );
    let ok = MultiwayJoin
        .run(
            &mut big,
            JoinInput::Stream(&sa),
            JoinInput::Stream(&sb),
            JoinInput::Stream(&sc),
        )
        .unwrap();
    assert!(ok.triples > 0);
    assert!(ok.memory.peak_bytes > 0);

    let mut tiny = env_with(72 * 1024);
    let (ta, tb, tc) = (
        ItemStream::from_items_with_block(&mut tiny, &a, 2).unwrap(),
        ItemStream::from_items_with_block(&mut tiny, &b, 2).unwrap(),
        ItemStream::from_items_with_block(&mut tiny, &c, 2).unwrap(),
    );
    let err = MultiwayJoin
        .run(
            &mut tiny,
            JoinInput::Stream(&ta),
            JoinInput::Stream(&tb),
            JoinInput::Stream(&tc),
        )
        .unwrap_err();
    assert!(
        matches!(err, usj_io::IoSimError::MemoryLimitExceeded { .. }),
        "expected MemoryLimitExceeded, got {err}"
    );
}

/// The plan reports its memory expectations up front, and they move in the
/// right direction as the limit shrinks.
#[test]
fn query_plans_report_partition_depth_and_spill_estimates() {
    let region = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
    let left = uniform(4000, region, 3, 0);
    let right = uniform(4000, region, 4, 1_000_000);

    let plan_for = |limit: usize, algo: Algo| -> MemoryPlan {
        let mut env = env_with(limit);
        let sl = ItemStream::from_items_with_block(&mut env, &left, 2).unwrap();
        let sr = ItemStream::from_items_with_block(&mut env, &right, 2).unwrap();
        SpatialQuery::new(JoinInput::Stream(&sl), JoinInput::Stream(&sr))
            .algorithm(algo)
            .region_hint(region)
            .plan(&mut env)
            .unwrap()
            .memory
    };

    // Ample memory: no repartitioning, no spill.
    let ample = plan_for(64 * MB, Algo::Pbsm);
    assert_eq!(ample.memory_limit, 64 * MB);
    assert_eq!(ample.partition_depth, 0);
    assert_eq!(ample.spill_estimate_bytes, 0);

    // A limit far below the 3× envelope of one partition: depth must rise.
    let tiny = plan_for(64 * 1024, Algo::Pbsm);
    assert!(tiny.partition_depth > 0, "{tiny:?}");

    // The sweep algorithms estimate spill volume instead, and it shrinks as
    // memory grows.
    let sweep_tiny = plan_for(64 * 1024, Algo::Sssj);
    let sweep_ample = plan_for(64 * MB, Algo::Sssj);
    assert!(sweep_tiny.spill_estimate_bytes > 0);
    assert!(sweep_ample.spill_estimate_bytes < sweep_tiny.spill_estimate_bytes);
    // The plan renders its memory clause.
    let mut env = env_with(64 * 1024);
    let sl = ItemStream::from_items_with_block(&mut env, &left, 2).unwrap();
    let sr = ItemStream::from_items_with_block(&mut env, &right, 2).unwrap();
    let plan = SpatialQuery::new(JoinInput::Stream(&sl), JoinInput::Stream(&sr))
        .algorithm(Algo::Pbsm)
        .region_hint(region)
        .plan(&mut env)
        .unwrap();
    let text = format!("{plan}");
    assert!(text.contains("repartitioning"), "{text}");
}
