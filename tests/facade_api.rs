//! Smoke tests for the facade crate: the re-exports and the prelude expose
//! everything a downstream user needs, with the documented names.

use unified_spatial_join::prelude::*;

#[test]
fn prelude_types_are_usable_together() {
    let rect = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    let interval: Interval = rect.x_interval();
    assert!(interval.overlaps(&Interval::new(0.5, 2.0)));
    let p = Point::new(0.5, 0.5);
    assert!(rect.contains_point(p));

    let machine = MachineConfig::machine1();
    assert_eq!(machine.cpu_mhz, 50.0);
    let env = SimEnv::new(machine);
    assert_eq!(env.device.stats(), IoStats::default());
}

#[test]
fn sweep_structures_are_reexported() {
    use unified_spatial_join::geom::Item;
    let mut fw = ForwardSweep::with_extent(0.0, 10.0);
    let mut st = StripedSweep::with_extent(0.0, 10.0);
    let it = Item::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 1);
    fw.insert(it);
    st.insert(it);
    assert_eq!(fw.len(), 1);
    assert_eq!(st.len(), 1);
}

#[test]
fn workload_presets_are_reachable_through_the_facade() {
    let spec = WorkloadSpec::preset(Preset::NJ).with_scale(2_000);
    let w: Workload = spec.generate(9);
    assert_eq!(w.preset, Preset::NJ);
    assert!(!w.roads.is_empty() && !w.hydro.is_empty());
}

#[test]
fn join_algorithms_and_results_are_reachable_through_the_facade() {
    use unified_spatial_join::join::JoinAlgorithm;
    assert_eq!(JoinAlgorithm::all().len(), 4);
    let spec = WorkloadSpec::preset(Preset::NJ).with_scale(2_000);
    let w = spec.generate(10);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();

    for joiner in [
        &PqJoin::default() as &dyn ErasedRun,
        &StJoin::default(),
        &SssjJoin::default(),
        &PbsmJoin::default(),
    ] {
        let result: JoinResultAlias = joiner.run_erased(
            &mut env,
            JoinInput::Indexed(&tree),
            JoinInput::Indexed(&hydro_tree),
        );
        assert_eq!(result.pairs, w.reference_join_size());
    }
}

/// Type alias proving `JoinResult` is exported with its documented name.
type JoinResultAlias = unified_spatial_join::join::JoinResult;

/// Object-safe adapter used by the test above to iterate over the four
/// concrete join types without generics.
trait ErasedRun {
    fn run_erased<'a>(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'a>,
        right: JoinInput<'a>,
    ) -> JoinResultAlias;
}

impl<T: SpatialJoin> ErasedRun for T {
    fn run_erased<'a>(
        &self,
        env: &mut SimEnv,
        left: JoinInput<'a>,
        right: JoinInput<'a>,
    ) -> JoinResultAlias {
        self.run(env, left, right).unwrap()
    }
}
