//! Smoke tests for the facade crate: the re-exports and the prelude expose
//! everything a downstream user needs, with the documented names.

use unified_spatial_join::prelude::*;

#[test]
fn prelude_types_are_usable_together() {
    let rect = Rect::from_coords(0.0, 0.0, 1.0, 1.0);
    let interval: Interval = rect.x_interval();
    assert!(interval.overlaps(&Interval::new(0.5, 2.0)));
    let p = Point::new(0.5, 0.5);
    assert!(rect.contains_point(p));

    let machine = MachineConfig::machine1();
    assert_eq!(machine.cpu_mhz, 50.0);
    let env = SimEnv::new(machine);
    assert_eq!(env.device.stats(), IoStats::default());
}

#[test]
fn sweep_structures_are_reexported() {
    use unified_spatial_join::geom::Item;
    let mut fw = ForwardSweep::with_extent(0.0, 10.0);
    let mut st = StripedSweep::with_extent(0.0, 10.0);
    let it = Item::new(Rect::from_coords(0.0, 0.0, 1.0, 1.0), 1);
    fw.insert(it);
    st.insert(it);
    assert_eq!(fw.len(), 1);
    assert_eq!(st.len(), 1);
}

#[test]
fn workload_presets_are_reachable_through_the_facade() {
    let spec = WorkloadSpec::preset(Preset::NJ).with_scale(2_000);
    let w: Workload = spec.generate(9);
    assert_eq!(w.preset, Preset::NJ);
    assert!(!w.roads.is_empty() && !w.hydro.is_empty());
}

#[test]
fn join_algorithms_and_results_are_reachable_through_the_facade() {
    use unified_spatial_join::join::JoinAlgorithm;
    assert_eq!(JoinAlgorithm::all().len(), 4);
    let spec = WorkloadSpec::preset(Preset::NJ).with_scale(2_000);
    let w = spec.generate(10);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();

    // `JoinOperator` is object-safe, so the four concrete joins erase
    // directly — no adapter trait needed.
    for joiner in [
        &PqJoin::default() as &dyn JoinOperator,
        &StJoin::default(),
        &SssjJoin::default(),
        &PbsmJoin::default(),
    ] {
        let result: JoinResultAlias = joiner
            .run(
                &mut env,
                JoinInput::Indexed(&tree),
                JoinInput::Indexed(&hydro_tree),
            )
            .unwrap();
        assert_eq!(result.pairs, w.reference_join_size());
    }
}

#[test]
fn query_builder_and_sinks_are_reachable_through_the_facade() {
    let w = WorkloadSpec::preset(Preset::NJ).with_scale(2_000).generate(10);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let (result, pairs) = SpatialQuery::new(
        JoinInput::Indexed(&tree),
        JoinInput::Indexed(&hydro_tree),
    )
    .algorithm(Algo::Auto)
    .predicate(Predicate::Intersects)
    .execution(Execution::Serial)
    .collect(&mut env)
    .unwrap();
    assert_eq!(result.pairs, w.reference_join_size());
    assert_eq!(pairs.len() as u64, result.pairs);

    // The memory report and the selectivity histogram are exported too.
    let stats: MemoryStats = result.memory;
    assert!(stats.total_bytes() > 0);
    let hist = GridHistogram::from_items(w.region, 16, &w.roads);
    assert!(hist.total() > 0);

    // Multi-way joins are reachable without digging into submodules.
    let zones = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let res = MultiwayJoin
        .run(
            &mut env,
            JoinInput::Indexed(&tree),
            JoinInput::Indexed(&hydro_tree),
            JoinInput::Indexed(&zones),
        )
        .unwrap();
    assert!(res.triples > 0);
}

/// Type alias proving `JoinResult` is exported with its documented name.
type JoinResultAlias = unified_spatial_join::join::JoinResult;

/// Closure callbacks keep working against `JoinOperator` now that the
/// deprecated `SpatialJoin` shim has been removed (closures are sinks).
#[test]
fn closure_sinks_replace_the_removed_spatial_join_shim() {
    let w = WorkloadSpec::preset(Preset::NJ).with_scale(4_000).generate(1);
    let mut env = SimEnv::new(MachineConfig::machine3());
    let tree = RTree::bulk_load(&mut env, &w.roads).unwrap();
    let hydro_tree = RTree::bulk_load(&mut env, &w.hydro).unwrap();
    let mut n = 0u64;
    let res = JoinOperator::run_with(
        &PqJoin::default(),
        &mut env,
        JoinInput::Indexed(&tree),
        JoinInput::Indexed(&hydro_tree),
        &mut |_, _| n += 1,
    )
    .unwrap();
    assert_eq!(res.pairs, n);
}
